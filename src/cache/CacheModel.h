/**
 * @file
 * CacheModel -- the single owner of a cache's per-(set, way) state and
 * of the one true access protocol every csr driver uses.
 *
 * The model keeps the state in a flat structure-of-arrays layout: one
 * contiguous tag array, one contiguous cost array, one contiguous
 * owner-defined aux word per line (MESI state, dirty bits, ...), and a
 * per-set valid bitmask -- no nested vectors and no per-set heap
 * allocations, so a set probe touches a handful of adjacent cache
 * lines instead of chasing pointers.
 *
 * The replacement policy attached to the model reads tag/cost state
 * *from* the model (see ReplacementPolicy::bind) instead of mirroring
 * it; recency order is the policy's own state.  Policy-less models
 * (e.g. the direct-mapped L1 filters) use the raw install/invalidate
 * entry points only.
 *
 * Protocol (identical to what TraceSimulator, the NUMA
 * CacheController, the tests and the benches previously hand-rolled):
 *
 *   1. access(set, tag) -- lookup + policy notification; returns the
 *      hit way or kInvalidWay.
 *   2. on a miss, fillVictimOrFree(set, tag, cost, aux, evict_fn) --
 *      picks the lowest free way, or asks the policy for a victim and
 *      hands it to @p evict_fn *before* overwriting (writebacks, L1
 *      inclusion scrubs, victim bookkeeping).  The policy is NOT told
 *      about the eviction through invalidate(): the ETD must retain
 *      the victim's tag (that is DCL's whole point).
 *   3. invalidateTag(set, tag) for external (coherence)
 *      invalidations -- the policy is always told, even for
 *      non-resident tags, so a matching ETD entry can be scrubbed.
 */

#ifndef CSR_CACHE_CACHEMODEL_H
#define CSR_CACHE_CACHEMODEL_H

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/ReplacementPolicy.h"
#include "cache/SimdScan.h"
#include "util/Atomics.h"
#include "util/Logging.h"

namespace csr
{

/**
 * Flat tag/cost/aux store plus the shared access protocol.
 */
class CacheModel
{
  public:
    /**
     * @param geom   cache geometry
     * @param policy replacement policy bound to this model, or nullptr
     *               for a policy-less store (direct-mapped filters)
     */
    explicit CacheModel(const CacheGeometry &geom,
                        PolicyPtr policy = nullptr);

    const CacheGeometry &geometry() const { return geom_; }

    /** The bound policy, or nullptr. */
    ReplacementPolicy *policy() { return policy_.get(); }
    const ReplacementPolicy *policy() const { return policy_.get(); }

    // --- flat state accessors --------------------------------------------

    bool
    isValid(std::uint32_t set, int way) const
    {
        return (validWord(set, way) >> bitOf(way)) & 1u;
    }

    /** Tag of a line; stale after invalidation until the next fill. */
    Addr tagAt(std::uint32_t set, int way) const
    {
        return tags_[idx(set, way)];
    }

    /** Predicted next-miss cost of a line. */
    Cost costAt(std::uint32_t set, int way) const
    {
        return costs_[idx(set, way)];
    }

    /** Owner-defined word (coherence state, dirty bit, ...). */
    std::uint32_t auxAt(std::uint32_t set, int way) const
    {
        return aux_[idx(set, way)];
    }

    void setAux(std::uint32_t set, int way, std::uint32_t aux)
    {
        aux_[idx(set, way)] = aux;
    }

    /** Valid lines in one set. */
    int
    validCountOf(std::uint32_t set) const
    {
        int n = 0;
        for (std::uint32_t w = 0; w < wordsPerSet_; ++w)
            n += __builtin_popcountll(valid_[set * wordsPerSet_ + w]);
        return n;
    }

    /** Valid lines across the whole array (tests). */
    std::uint64_t countValid() const;

    // --- lookup (no side effects) ----------------------------------------

    /** Way holding @p tag, or kInvalidWay.  Only valid ways match.
     *  Callers must hold whatever lock serializes mutation of this
     *  model; concurrent optimistic readers use probeConcurrent(). */
    int
    lookup(std::uint32_t set, Addr tag) const
    {
        const Addr *tags = &tags_[idx(set, 0)];
        for (std::uint32_t w = 0; w < wordsPerSet_; ++w) {
            // SIMD equality sweep over the set's contiguous tag lane
            // (AVX2 when the CPU has it), intersected with the valid
            // mask.
            const std::uint32_t lo = w * 64;
            const std::uint32_t n =
                geom_.assoc() - lo < 64 ? geom_.assoc() - lo : 64;
            const std::uint64_t hit =
                simd::tagEqMask(tags + lo, n, tag) &
                valid_[set * wordsPerSet_ + w];
            if (hit)
                return static_cast<int>(lo) + __builtin_ctzll(hit);
        }
        return kInvalidWay;
    }

    /**
     * Lock-free probe for seqlock readers: the way holding @p tag, or
     * kInvalidWay.  Unlike lookup(), this is safe to call while a
     * (serialized) writer mutates the set, PROVIDED the caller brackets
     * it in a seqlock read section and discards the result when
     * validation fails -- a torn probe can return any way or a false
     * miss, never undefined behaviour.  Under TSan the SIMD sweep is
     * replaced by per-word relaxed atomic loads (writers store
     * tag/valid words atomically, so the pairing is race-free).
     */
    int
    probeConcurrent(std::uint32_t set, Addr tag) const
    {
        const Addr *tags = &tags_[idx(set, 0)];
        for (std::uint32_t w = 0; w < wordsPerSet_; ++w) {
            const std::uint32_t lo = w * 64;
            const std::uint32_t n =
                geom_.assoc() - lo < 64 ? geom_.assoc() - lo : 64;
#if defined(CSR_TSAN)
            std::uint64_t eq = 0;
            for (std::uint32_t i = 0; i < n; ++i)
                eq |= std::uint64_t{loadRelaxed(tags[lo + i]) == tag}
                      << i;
#else
            const std::uint64_t eq = simd::tagEqMask(tags + lo, n, tag);
#endif
            const std::uint64_t hit =
                eq & loadRelaxed(valid_[set * wordsPerSet_ + w]);
            if (hit)
                return static_cast<int>(lo) + __builtin_ctzll(hit);
        }
        return kInvalidWay;
    }

    /** Lowest-numbered invalid way, or kInvalidWay when the set is
     *  full. */
    int
    findFreeWay(std::uint32_t set) const
    {
        for (std::uint32_t w = 0; w < wordsPerSet_; ++w) {
            const std::uint64_t free =
                ~valid_[set * wordsPerSet_ + w] & wordMasks_[w];
            if (free)
                return static_cast<int>(w * 64) +
                       __builtin_ctzll(free);
        }
        return kInvalidWay;
    }

    // --- the one true access protocol ------------------------------------

    /**
     * Notify the bound policy of an access whose lookup the owner has
     * already performed (recency update on a hit, ETD probe on a
     * miss).
     */
    void
    noteAccess(std::uint32_t set, Addr tag, int way)
    {
        policy_->access(set, tag, way);
    }

    /** lookup() + noteAccess() in one step.  @return the hit way or
     *  kInvalidWay. */
    int
    access(std::uint32_t set, Addr tag)
    {
        const int way = lookup(set, tag);
        policy_->access(set, tag, way);
        return way;
    }

    /**
     * Install @p tag after a miss: into the lowest free way, else into
     * the policy's victim.  @p evict is called as
     * evict(way, victim_tag, victim_aux) for a valid victim *before*
     * the line is overwritten.  The policy's fill() runs last.
     * @return the way filled.
     */
    template <typename EvictFn>
    int
    fillVictimOrFree(std::uint32_t set, Addr tag, Cost cost,
                     std::uint32_t aux, EvictFn &&evict)
    {
        int way = findFreeWay(set);
        if (way == kInvalidWay) {
            way = policy_->selectVictim(set);
            const std::size_t k = idx(set, way);
            evict(way, tags_[k], aux_[k]);
        }
        const std::size_t k = idx(set, way);
        // Tag and valid-word stores are relaxed atomics (plain MOVs on
        // x86) so concurrent probeConcurrent() readers never race.
        storeRelaxed(tags_[k], tag);
        costs_[k] = cost;
        aux_[k] = aux;
        setValidBit(set, way);
        policy_->fill(set, way, tag, cost);
        return way;
    }

    /** fillVictimOrFree() for owners that need no victim hook. */
    int
    fillVictimOrFree(std::uint32_t set, Addr tag, Cost cost,
                     std::uint32_t aux = 0)
    {
        return fillVictimOrFree(set, tag, cost, aux,
                                [](int, Addr, std::uint32_t) {});
    }

    /**
     * External (coherence) invalidation by tag.  The bound policy is
     * always told -- even when the tag is not resident -- so it can
     * scrub a matching ETD entry (Section 2.4 of the paper).
     * @return the way that was invalidated, or kInvalidWay.
     */
    int
    invalidateTag(std::uint32_t set, Addr tag)
    {
        const int way = lookup(set, tag);
        if (policy_)
            policy_->invalidate(set, tag, way);
        if (way != kInvalidWay)
            clearValidBit(set, way);
        return way;
    }

    /** Refresh the predicted next-miss cost of a resident line (the
     *  bound policy sees the update through its updateCost hook). */
    void
    updateCost(std::uint32_t set, int way, Cost cost)
    {
        costs_[idx(set, way)] = cost;
        if (policy_)
            policy_->updateCost(set, way, cost);
    }

    // --- raw entry points (policy-less models, tests) ---------------------

    /** Install a line directly, bypassing the policy (direct-mapped
     *  L1 filters install at a fixed way). */
    void
    install(std::uint32_t set, int way, Addr tag, std::uint32_t aux = 0)
    {
        const std::size_t k = idx(set, way);
        storeRelaxed(tags_[k], tag);
        aux_[k] = aux;
        setValidBit(set, way);
    }

    /** Clear one way's valid bit, bypassing the policy. */
    void
    invalidateWay(std::uint32_t set, int way)
    {
        clearValidBit(set, way);
    }

    /** Invalidate every line and reset the bound policy. */
    void reset();

    /** --validate pass: structural checks of the flat state (valid
     *  bits confined to real ways, no duplicate valid tags in a set)
     *  plus the bound policy's own checks.  Throws InvariantError on
     *  violation. */
    void checkInvariants() const;

  private:
    std::size_t
    idx(std::uint32_t set, int way) const
    {
        return static_cast<std::size_t>(set) * geom_.assoc() +
               static_cast<std::size_t>(way);
    }

    static std::uint32_t bitOf(int way)
    {
        return static_cast<std::uint32_t>(way) & 63u;
    }

    // Valid-bit flips are load+atomic-store (not RMW: writers are
    // already serialized by the owner's lock) so probeConcurrent()
    // readers never observe a data race.
    void
    setValidBit(std::uint32_t set, int way)
    {
        std::uint64_t &word = validWord(set, way);
        storeRelaxed(word, word | (std::uint64_t{1} << bitOf(way)));
    }

    void
    clearValidBit(std::uint32_t set, int way)
    {
        std::uint64_t &word = validWord(set, way);
        storeRelaxed(word, word & ~(std::uint64_t{1} << bitOf(way)));
    }

    std::uint64_t &validWord(std::uint32_t set, int way)
    {
        return valid_[set * wordsPerSet_ +
                      (static_cast<std::uint32_t>(way) >> 6)];
    }

    const std::uint64_t &validWord(std::uint32_t set, int way) const
    {
        return valid_[set * wordsPerSet_ +
                      (static_cast<std::uint32_t>(way) >> 6)];
    }

    CacheGeometry geom_;
    std::uint32_t wordsPerSet_;
    /** wordMasks_[w]: mask of the ways covered by valid word w of a
     *  set (all-ones except a partial final word). */
    std::vector<std::uint64_t> wordMasks_;
    std::vector<Addr> tags_;          // per (set, way), contiguous
    std::vector<Cost> costs_;         // per (set, way), contiguous
    std::vector<std::uint32_t> aux_;  // per (set, way), contiguous
    std::vector<std::uint64_t> valid_; // per-set bitmask words
    PolicyPtr policy_;
};

} // namespace csr

#endif // CSR_CACHE_CACHEMODEL_H
