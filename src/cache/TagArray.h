/**
 * @file
 * Tag store for a set-associative cache.
 *
 * The tag array is deliberately policy-free: it records which tags are
 * resident and a small per-line auxiliary word that owners (the trace
 * simulator's L2, the NUMA cache controller) use for coherence state or
 * dirty bits.  Recency and cost metadata live in the ReplacementPolicy.
 */

#ifndef CSR_CACHE_TAGARRAY_H
#define CSR_CACHE_TAGARRAY_H

#include <cstdint>
#include <vector>

#include "cache/CacheGeometry.h"
#include "util/Types.h"

namespace csr
{

/** One cache line's bookkeeping (no data payload is simulated). */
struct TagLine
{
    bool valid = false;
    Addr tag = 0;
    /** Owner-defined word (coherence state, dirty bit, ...). */
    std::uint32_t aux = 0;
};

/**
 * The tag side of a set-associative cache.
 *
 * Lookup and install are by (set, tag); iteration by (set, way).
 */
class TagArray
{
  public:
    explicit TagArray(const CacheGeometry &geom)
        : geom_(geom),
          lines_(static_cast<std::size_t>(geom.numSets()) * geom.assoc())
    {
    }

    const CacheGeometry &geometry() const { return geom_; }

    /** Way holding the tag, or kInvalidWay. */
    int
    findWay(std::uint32_t set, Addr tag) const
    {
        for (std::uint32_t w = 0; w < geom_.assoc(); ++w) {
            const TagLine &line = at(set, w);
            if (line.valid && line.tag == tag)
                return static_cast<int>(w);
        }
        return kInvalidWay;
    }

    /** Lowest-numbered invalid way in the set, or kInvalidWay if full. */
    int
    findInvalidWay(std::uint32_t set) const
    {
        for (std::uint32_t w = 0; w < geom_.assoc(); ++w) {
            if (!at(set, w).valid)
                return static_cast<int>(w);
        }
        return kInvalidWay;
    }

    TagLine &
    at(std::uint32_t set, std::uint32_t way)
    {
        return lines_[static_cast<std::size_t>(set) * geom_.assoc() + way];
    }

    const TagLine &
    at(std::uint32_t set, std::uint32_t way) const
    {
        return lines_[static_cast<std::size_t>(set) * geom_.assoc() + way];
    }

    /** Install a tag into a way (way must currently be free or being
     *  reused after eviction by the caller). */
    void
    install(std::uint32_t set, std::uint32_t way, Addr tag,
            std::uint32_t aux = 0)
    {
        TagLine &line = at(set, way);
        line.valid = true;
        line.tag = tag;
        line.aux = aux;
    }

    /** Invalidate one way. */
    void
    invalidateWay(std::uint32_t set, std::uint32_t way)
    {
        at(set, way).valid = false;
    }

    /** Number of valid lines across the whole array (for tests). */
    std::uint64_t
    countValid() const
    {
        std::uint64_t n = 0;
        for (const auto &line : lines_)
            n += line.valid ? 1 : 0;
        return n;
    }

    /** Invalidate everything. */
    void
    reset()
    {
        for (auto &line : lines_)
            line.valid = false;
    }

  private:
    CacheGeometry geom_;
    std::vector<TagLine> lines_;
};

} // namespace csr

#endif // CSR_CACHE_TAGARRAY_H
