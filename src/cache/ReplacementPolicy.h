/**
 * @file
 * Abstract interface for (cost-sensitive) replacement policies.
 *
 * The CacheModel that owns the per-(set, way) tag/cost state drives
 * the policy through a fixed protocol for every access to a set:
 *
 *   1. access(set, tag, hit_way)  -- always, before any fill.  On a hit,
 *      hit_way is the resident way; on a miss it is kInvalidWay.  This
 *      is where recency updates, ETD lookups and cost depreciation
 *      happen (the paper checks the ETD "upon every cache access").
 *   2. on a miss that must evict, selectVictim(set) -- only when the
 *      set has no invalid way.  Returns the way to evict.  The owner
 *      evicts it, then the policy is told about the new block via
 *   3. fill(set, way, tag, cost) -- the new block is installed with its
 *      predicted next-miss cost.
 *
 * External invalidations (coherence) call invalidate(); this also
 * scrubs any ETD record of the tag, per Section 2.4 of the paper.
 * Costs of resident lines can be refreshed via updateCost() when a
 * dynamic cost model produces a new prediction.
 *
 * Policies are stateful per set but know nothing about addresses
 * beyond (set, tag) pairs, so the same objects serve the trace-driven
 * L2 and the NUMA cache controller.
 */

#ifndef CSR_CACHE_REPLACEMENTPOLICY_H
#define CSR_CACHE_REPLACEMENTPOLICY_H

#include <cstdint>
#include <memory>
#include <string>

#include "cache/CacheGeometry.h"
#include "util/Stats.h"
#include "util/Types.h"

namespace csr
{

class CacheModel;

/**
 * Base class of all replacement policies.
 */
class ReplacementPolicy
{
  public:
    explicit ReplacementPolicy(const CacheGeometry &geom) : geom_(geom) {}
    virtual ~ReplacementPolicy() = default;

    ReplacementPolicy(const ReplacementPolicy &) = delete;
    ReplacementPolicy &operator=(const ReplacementPolicy &) = delete;

    /**
     * Attach the policy to the CacheModel that owns the per-(set, way)
     * tag/cost state it reads.  Called once by the model's
     * constructor; policies must be driven through a CacheModel.
     */
    virtual void bind(CacheModel &model) { model_ = &model; }

    /** Short identifier, e.g. "LRU", "BCL". */
    virtual std::string name() const = 0;

    /**
     * Notify the policy of an access to (set, tag).
     *
     * @param set     set index
     * @param tag     tag of the accessed block
     * @param hit_way resident way on a hit, kInvalidWay on a miss
     */
    virtual void access(std::uint32_t set, Addr tag, int hit_way) = 0;

    /**
     * Choose the way to evict from a full set.  Never returns
     * kInvalidWay.  May mutate reservation state (e.g. depreciate the
     * reserved block's cost in BCL).
     */
    virtual int selectVictim(std::uint32_t set) = 0;

    /**
     * A new block was installed.  @p way is either the victim returned
     * by selectVictim() or a previously invalid way.
     *
     * @param cost predicted cost of the block's *next* miss
     */
    virtual void fill(std::uint32_t set, int way, Addr tag, Cost cost) = 0;

    /**
     * External invalidation.  @p way is the resident way being
     * invalidated, or kInvalidWay when the block is not resident (the
     * call is still made so the ETD entry, if any, can be scrubbed).
     */
    virtual void invalidate(std::uint32_t set, Addr tag, int way) = 0;

    /** Refresh the predicted next-miss cost of a resident line.  The
     *  default ignores the update (cost-blind policies). */
    virtual void
    updateCost(std::uint32_t set, int way, Cost cost)
    {
        (void)set;
        (void)way;
        (void)cost;
    }

    /** Reset all recency / reservation / ETD state. */
    virtual void reset() = 0;

    /** --validate hook: verify internal state against the bound
     *  model, throwing InvariantError on corruption.  The default
     *  has nothing to check. */
    virtual void checkInvariants() const {}

    const CacheGeometry &geometry() const { return geom_; }

    /** Policy-internal event counters (reservations, ETD hits, ...). */
    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  protected:
    CacheGeometry geom_;
    StatGroup stats_;
    /** The owning CacheModel; set by bind(). */
    CacheModel *model_ = nullptr;
};

/** Owning handle used throughout the simulators. */
using PolicyPtr = std::unique_ptr<ReplacementPolicy>;

} // namespace csr

#endif // CSR_CACHE_REPLACEMENTPOLICY_H
