/**
 * @file
 * BCL -- the Basic Cost-sensitive LRU algorithm (Section 2.3, Fig. 1).
 */

#ifndef CSR_CACHE_BCLPOLICY_H
#define CSR_CACHE_BCLPOLICY_H

#include "cache/CostSensitiveLruBase.h"

namespace csr
{

/**
 * Basic Cost-sensitive LRU.
 *
 * Victim selection follows Figure 1 exactly: scan from the second-LRU
 * position toward the MRU for the first block whose cost is below
 * Acost; sacrifice it and immediately depreciate Acost by twice its
 * cost; otherwise evict the LRU block.  The depreciation is applied
 * whenever a block is replaced in the reserved block's place,
 * *regardless* of whether the replaced block is referenced again --
 * the pessimistic assumption DCL later removes.
 */
class BclPolicy : public CostSensitiveLruBase
{
  public:
    explicit BclPolicy(const CacheGeometry &geom,
                       double depreciation_factor = 2.0)
        : CostSensitiveLruBase(geom, depreciation_factor)
    {
    }

    std::string name() const override { return "BCL"; }

    int
    selectVictim(std::uint32_t set) override
    {
        const int victim = findReservationVictim(set);
        if (victim != lruWay(set)) {
            // A non-LRU block is sacrificed: pay for the reservation
            // up front by depreciating the reserved block's cost.
            depreciate(set, costOf(set, victim));
        }
        return victim;
    }
};

} // namespace csr

#endif // CSR_CACHE_BCLPOLICY_H
