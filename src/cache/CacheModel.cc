#include "cache/CacheModel.h"

#include <algorithm>
#include <string>

#include "robust/Errors.h"

namespace csr
{

CacheModel::CacheModel(const CacheGeometry &geom, PolicyPtr policy)
    : geom_(geom), wordsPerSet_((geom.assoc() + 63) / 64),
      wordMasks_(wordsPerSet_, ~std::uint64_t{0}),
      tags_(static_cast<std::size_t>(geom.numSets()) * geom.assoc(), 0),
      costs_(static_cast<std::size_t>(geom.numSets()) * geom.assoc(), 0.0),
      aux_(static_cast<std::size_t>(geom.numSets()) * geom.assoc(), 0),
      valid_(static_cast<std::size_t>(geom.numSets()) * wordsPerSet_, 0),
      policy_(std::move(policy))
{
    if (geom_.assoc() % 64 != 0) {
        wordMasks_.back() =
            (std::uint64_t{1} << (geom_.assoc() % 64)) - 1;
    }
    if (policy_) {
        csr_assert(policy_->geometry().numSets() == geom_.numSets() &&
                   policy_->geometry().assoc() == geom_.assoc(),
                   "policy geometry does not match the cache");
        policy_->bind(*this);
    }
}

std::uint64_t
CacheModel::countValid() const
{
    std::uint64_t n = 0;
    for (const std::uint64_t word : valid_)
        n += static_cast<std::uint64_t>(__builtin_popcountll(word));
    return n;
}

void
CacheModel::checkInvariants() const
{
    for (std::uint32_t set = 0; set < geom_.numSets(); ++set) {
        for (std::uint32_t w = 0; w < wordsPerSet_; ++w) {
            const std::uint64_t word = valid_[set * wordsPerSet_ + w];
            if (word & ~wordMasks_[w])
                throw InvariantError(
                    "cache set " + std::to_string(set) +
                    ": valid bits set beyond associativity");
        }
        // Two valid ways holding one tag would make lookup()
        // ambiguous; the fill/invalidate protocol must never let it
        // happen.
        for (std::uint32_t a = 0; a < geom_.assoc(); ++a) {
            if (!isValid(set, static_cast<int>(a)))
                continue;
            for (std::uint32_t b = a + 1; b < geom_.assoc(); ++b) {
                if (isValid(set, static_cast<int>(b)) &&
                    tagAt(set, static_cast<int>(a)) ==
                        tagAt(set, static_cast<int>(b)))
                    throw InvariantError(
                        "cache set " + std::to_string(set) +
                        ": duplicate valid tag in ways " +
                        std::to_string(a) + " and " +
                        std::to_string(b));
            }
        }
    }
    if (policy_)
        policy_->checkInvariants();
}

void
CacheModel::reset()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(tags_.begin(), tags_.end(), 0);
    std::fill(costs_.begin(), costs_.end(), 0.0);
    std::fill(aux_.begin(), aux_.end(), 0);
    if (policy_)
        policy_->reset();
}

} // namespace csr
