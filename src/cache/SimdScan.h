/**
 * @file
 * SIMD tag scan over a set's contiguous tag lane.
 *
 * The CacheModel keeps each set's tags adjacent in one flat array
 * (SoA, PR 2), which makes the tag compare of a set probe a textbook
 * vector equality sweep: broadcast the needle, compare 4 tags per
 * AVX2 vector, movemask the lanes into a way bitmask and intersect
 * with the set's valid mask (Multi-step LRU does the same scan over
 * its KV-cache entries).
 *
 * Dispatch is resolved once at startup from CPUID, so binaries built
 * without -mavx2 still use the AVX2 kernel on hardware that has it,
 * and portably fall back to a scalar sweep (which itself
 * auto-vectorizes to SSE2 on x86-64).  Tiny scans (assoc <= 4, the
 * trace simulators' geometries) stay inline and branchless -- a call
 * through the dispatch pointer would cost more than the compare.
 */

#ifndef CSR_CACHE_SIMDSCAN_H
#define CSR_CACHE_SIMDSCAN_H

#include <cstdint>

namespace csr::simd
{

/** Signature of a tag-equality kernel: bitmask (bit i set iff
 *  tags[i] == needle) over the first @p count tags, count <= 64. */
using TagEqMaskFn = std::uint64_t (*)(const std::uint64_t *tags,
                                      std::uint32_t count,
                                      std::uint64_t needle);

/** Scalar kernel (and the tail loop of the vector kernels). */
std::uint64_t tagEqMaskScalar(const std::uint64_t *tags,
                              std::uint32_t count,
                              std::uint64_t needle);

/** CPUID-dispatched kernel; resolved once before main(). */
extern const TagEqMaskFn kTagEqMask;

/** Name of the resolved kernel ("avx2" or "scalar"), for banners. */
const char *tagScanIsa();

/**
 * Equality bitmask over @p count contiguous tags.  Inline branchless
 * sweep for tiny scans, dispatched kernel above that.
 */
inline std::uint64_t
tagEqMask(const std::uint64_t *tags, std::uint32_t count,
          std::uint64_t needle)
{
    if (count <= 4) {
        std::uint64_t mask = 0;
        for (std::uint32_t i = 0; i < count; ++i)
            mask |= std::uint64_t{tags[i] == needle} << i;
        return mask;
    }
    return kTagEqMask(tags, count, needle);
}

} // namespace csr::simd

#endif // CSR_CACHE_SIMDSCAN_H
