/**
 * @file
 * Shared machinery of the paper's LRU-based cost-sensitive policies
 * (BCL, DCL, ACL): the depreciated reservation cost Acost, the victim
 * scan of Figure 1, and reservation success/failure bookkeeping.
 */

#ifndef CSR_CACHE_COSTSENSITIVELRUBASE_H
#define CSR_CACHE_COSTSENSITIVELRUBASE_H

#include <vector>

#include "cache/StackPolicyBase.h"
#include "telemetry/Telemetry.h"

namespace csr
{

/**
 * Base of BCL / DCL / ACL.
 *
 * Maintains one computed cost field per set, Acost, attached to the
 * blockframe currently at the LRU position.  Whenever a block enters
 * the LRU position, Acost is (re)loaded with that block's miss cost
 * (Figure 1, upon_entering_LRU_position).  Derived policies decide
 * when and by how much Acost is depreciated.
 *
 * The victim scan (findReservationVictim) implements Figure 1's
 * find_victim loop: walk the LRU stack from the second-LRU position
 * toward the MRU and return the first block whose cost is strictly
 * lower than Acost; if none exists the LRU block itself is the victim.
 * Skipped higher-cost, low-locality blocks are thereby implicitly
 * reserved, which is how one *or several* simultaneous reservations
 * fall out of the same loop (Section 2.3).
 */
class CostSensitiveLruBase : public StackPolicyBase
{
  public:
    /**
     * @param geom                cache geometry
     * @param depreciation_factor multiplier applied to a sacrificed
     *        block's cost when depreciating Acost.  The paper uses 2
     *        ("using twice the cost instead of once the cost is safer
     *        because it accelerates the depreciation"); the ablation
     *        bench sweeps this.
     */
    CostSensitiveLruBase(const CacheGeometry &geom,
                         double depreciation_factor = 2.0)
        : StackPolicyBase(geom), depreciationFactor_(depreciation_factor),
          acost_(geom.numSets(), 0.0), reserved_(geom.numSets(), 0),
          statStart_(stats_.counter("csl.reservation.start")),
          statSacrifice_(stats_.counter("csl.reservation.sacrifice")),
          statFail_(stats_.counter("csl.reservation.fail")),
          statSuccess_(stats_.counter("csl.reservation.success")),
          statInvalidated_(stats_.counter("csl.reservation.invalidated"))
    {
        usesLruHook_ = true;
        usesHitHook_ = true;
        // The whole BCL/DCL/ACL onHit chain only acts on hits at the
        // LRU position (reservation success, ETD drop), so access()
        // may skip the dispatch for every hit above it.
        hitHookLruOnly_ = true;
    }

    /** Current depreciated cost of the reserved LRU block of a set. */
    Cost acostOf(std::uint32_t set) const { return acost_[set]; }

    /** True while the set's LRU blockframe is under reservation. */
    bool isReserved(std::uint32_t set) const { return reserved_[set] != 0; }

    double depreciationFactor() const { return depreciationFactor_; }

    void
    reset() override
    {
        StackPolicyBase::reset();
        std::fill(acost_.begin(), acost_.end(), 0.0);
        std::fill(reserved_.begin(), reserved_.end(), 0);
    }

  protected:
    /**
     * Figure 1 victim scan.  Returns the way to victimize; when it is
     * not the LRU way, a reservation is (re)started for the LRU block
     * and the reservation counter bookkeeping is updated.  Does NOT
     * depreciate Acost -- BCL does that inline, DCL on ETD hits.
     */
    int
    findReservationVictim(std::uint32_t set)
    {
        const int n = stackSize(set);
        csr_assert(n > 0, "victim requested on empty set");
        // Positions n-1 (second-LRU) down to 1 (MRU); position n is
        // the LRU block being considered for reservation.
        for (int pos = n - 1; pos >= 1; --pos) {
            const int way = wayAt(set, pos);
            if (costOf(set, way) < acost_[set]) {
                if (!reserved_[set]) {
                    reserved_[set] = 1;
                    ++statStart_;
                    CSR_TRACE_INSTANT_V("policy", "reservation.open",
                                        acost_[set]);
                }
                ++statSacrifice_;
                return way;
            }
        }
        // No cheaper block: the LRU block is evicted.  If it was under
        // reservation, the reservation has failed.
        if (reserved_[set]) {
            reserved_[set] = 0;
            ++statFail_;
            CSR_TRACE_INSTANT("policy", "reservation.expired");
            onReservationFailed(set);
        }
        return wayAt(set, n);
    }

    /** Depreciate Acost by depreciationFactor_ * cost, clamped at 0. */
    void
    depreciate(std::uint32_t set, Cost cost)
    {
        const Cost amount = depreciationFactor_ * cost;
        acost_[set] = acost_[set] > amount ? acost_[set] - amount : 0.0;
        CSR_TRACE_INSTANT_V("policy", "reservation.depreciated",
                            acost_[set]);
    }

    /** Hook: a reservation ended because the reserved block was
     *  evicted (ACL decrements its counter here). */
    virtual void onReservationFailed(std::uint32_t set) { (void)set; }

    /** Hook: a reservation ended because the reserved block was hit
     *  (ACL increments its counter here). */
    virtual void onReservationSucceeded(std::uint32_t set) { (void)set; }

    void
    onLruChanged(std::uint32_t set, int lru_way) override
    {
        // A new block occupies the LRU position: load Acost with its
        // miss cost (Figure 1).  An empty set clears Acost.
        acost_[set] = lru_way == kInvalidWay ? 0.0 : costOf(set, lru_way);
    }

    void
    onHit(std::uint32_t set, int way, int old_pos) override
    {
        // old_pos was computed before promotion, so the LRU position
        // at the time of the access was stackSize(set).
        if (old_pos == stackSize(set) && reserved_[set]) {
            reserved_[set] = 0;
            ++statSuccess_;
            CSR_TRACE_INSTANT("policy", "reservation.success");
            onReservationSucceeded(set);
        }
        (void)way;
    }

    void
    onInvalidateWay(std::uint32_t set, Addr tag, int way) override
    {
        // External invalidation of the reserved LRU block ends the
        // reservation without scoring it as success or failure.
        if (reserved_[set] && way == lruWay(set)) {
            reserved_[set] = 0;
            ++statInvalidated_;
        }
        (void)tag;
    }

  private:
    double depreciationFactor_;
    std::vector<Cost> acost_;
    std::vector<std::uint8_t> reserved_;
    // Reservation-outcome counters fire per miss on the victim-scan
    // hot path; resolved once here (StatGroup::counter) so each event
    // is a plain increment, not a map walk.
    std::uint64_t &statStart_;
    std::uint64_t &statSacrifice_;
    std::uint64_t &statFail_;
    std::uint64_t &statSuccess_;
    std::uint64_t &statInvalidated_;
};

} // namespace csr

#endif // CSR_CACHE_COSTSENSITIVELRUBASE_H
