/**
 * @file
 * Construction of sampled-processor traces (Section 3.1 methodology).
 *
 * The paper gathers "the trace of one selected slave process ... in
 * the parallel section", containing "all the shared data accesses of
 * one processor plus all the shared data writes from other
 * processors" (the writes are needed to model invalidations).
 *
 * buildSampledTrace() interleaves the per-processor streams of a
 * SyntheticWorkload in round-robin bursts -- a coarse but
 * deterministic model of concurrent execution -- and keeps exactly
 * that record subset.  While interleaving it also performs per-block
 * first-touch home assignment, which the first-touch cost mapping of
 * Section 3.3 and the Table 1 remote-access fractions are derived
 * from.
 */

#ifndef CSR_TRACE_SAMPLEDTRACE_H
#define CSR_TRACE_SAMPLEDTRACE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/Workload.h"

namespace csr
{

/** A sampled-processor trace plus the metadata derived from it. */
struct SampledTrace
{
    std::string benchmark;
    ProcId sampledProc = 0;
    std::uint32_t blockBytes = 64;

    /** Sampled processor's accesses + other processors' writes, in
     *  interleaved global order. */
    std::vector<TraceRecord> records;

    /** First-touch home node of every touched block (key is the
     *  block-granular address, i.e. byte address / blockBytes). */
    std::unordered_map<Addr, ProcId> homeOf;

    // --- Table 1 style characteristics -----------------------------------

    /** References issued by the sampled processor. */
    std::uint64_t sampledRefs = 0;
    /** Distinct blocks touched by anyone, times blockBytes. */
    std::uint64_t touchedBytes = 0;
    /** Fraction of the sampled processor's references that target a
     *  block whose first-touch home is another processor. */
    double remoteAccessFraction = 0.0;

    /** Block-granular address of a record. */
    Addr
    blockOf(const TraceRecord &rec) const
    {
        return rec.addr / blockBytes;
    }

    /** True if the block is homed away from the sampled processor. */
    bool
    isRemote(Addr block_addr) const
    {
        auto it = homeOf.find(block_addr);
        return it != homeOf.end() && it->second != sampledProc;
    }
};

/**
 * Interleave, filter and characterize.
 *
 * @param workload   the P-processor program
 * @param sampled    which processor's perspective to trace
 * @param block_bytes cache block size for first-touch granularity
 * @param burst      accesses a processor issues before the
 *                   round-robin moves on (jittered +/-50% so streams
 *                   do not interleave in lockstep)
 * @param seed       jitter seed
 */
SampledTrace buildSampledTrace(const SyntheticWorkload &workload,
                               ProcId sampled, std::uint32_t block_bytes = 64,
                               std::uint32_t burst = 64,
                               std::uint64_t seed = 7);

} // namespace csr

#endif // CSR_TRACE_SAMPLEDTRACE_H
