/**
 * @file
 * Raytrace (hierarchical ray tracing) workload generator.
 *
 * SPLASH-2 Raytrace renders a scene by shooting rays through a
 * hierarchical uniform grid.  Its trace signature, per the paper:
 * data-dependent, irregular accesses over a very large read-shared
 * scene (32 MB for "car"; miss rate inversely proportional to cache
 * size) with a remote fraction of 29.6%.  The generator models:
 *
 *   - a large read-only scene region whose blocks are first-touched
 *     by whichever processor's ray reaches them first (scattered
 *     homes => most scene reads are remote);
 *   - per-ray traversal: a few reads of the hot top-level hierarchy
 *     blocks, then a spatially-correlated random walk through the
 *     scene (coherent rays mostly step locally in the address space,
 *     with occasional long jumps), then shading reads;
 *   - per-ray local work: ray-stack scratch accesses and framebuffer
 *     writes, both processor-private regions that keep the overall
 *     remote fraction at Table 1's level.
 */

#ifndef CSR_TRACE_RAYTRACEWORKLOAD_H
#define CSR_TRACE_RAYTRACEWORKLOAD_H

#include "trace/Workload.h"

namespace csr
{

/** Tunables of the Raytrace-like generator. */
struct RaytraceParams
{
    ProcId numProcs = 8;
    std::uint32_t sceneBlocks = 65536;  ///< 4 MB scene (paper: 32 MB)
    std::uint32_t hotRootBlocks = 16;   ///< top hierarchy levels
    std::uint32_t walkSteps = 20;       ///< grid traversal reads per ray
    std::uint32_t shadingReads = 4;
    std::uint32_t scratchAccesses = 20; ///< hot ray-stack work per ray
    std::uint32_t scratchBlocks = 64;   ///< hot scratch footprint
    /** Streaming local work per ray (ray-packet buffers, image-tile
     *  staging): writes that cycle through a large circular buffer
     *  and are dead once the cursor moves on.  These provide the
     *  cheap, low-locality blocks that reservations can sacrifice
     *  without penalty. */
    std::uint32_t streamAccesses = 20;
    std::uint32_t streamBlocks = 4096;
    /** Coherent rays revisit a few scene regions ("lobes": the eye
     *  ray cluster, shadow rays toward lights, reflections).  Each
     *  ray walks near one lobe; lobes drift slowly and occasionally
     *  jump.  The combined lobe footprint sits just past the L2
     *  capacity, which is where reservations pay off. */
    std::uint32_t numLobes = 4;
    std::uint32_t lobeSpanBlocks = 80;  ///< walk range around a lobe
    double lobeJumpProb = 0.02;         ///< lobe relocation per ray
    std::uint32_t lobeDrift = 8;        ///< slow per-ray drift
    std::uint32_t framebufferBlocks = 2048; ///< per proc
    std::uint64_t targetRefsPerProc = 800000;
    std::uint64_t seed = 4;
};

/** Raytrace-like synthetic workload (see file comment). */
class RaytraceWorkload : public SyntheticWorkload
{
  public:
    explicit RaytraceWorkload(const RaytraceParams &params = {});

    /** Params plus the factory's uniform overrides (nonzero
     *  config.numProcs / seed / targetRefsPerProc win). */
    RaytraceWorkload(const RaytraceParams &params,
                     const WorkloadConfig &config)
        : RaytraceWorkload(applyWorkloadConfig(params, config))
    {
    }

    std::string name() const override { return "raytrace"; }
    ProcId numProcs() const override { return params_.numProcs; }
    std::uint64_t memoryBytes() const override;
    std::unique_ptr<ProcAccessStream> procStream(ProcId p) const override;

    const RaytraceParams &params() const { return params_; }

  private:
    RaytraceParams params_;
};

} // namespace csr

#endif // CSR_TRACE_RAYTRACEWORKLOAD_H
