/**
 * @file
 * Synthetic multiprocessor workload interfaces.
 *
 * The paper evaluates on four SPLASH-2 benchmarks (Barnes, LU, Ocean,
 * Raytrace).  We do not have the original traces or a SPARC
 * execution environment, so each benchmark is substituted by a
 * generator that reproduces the documented *access structure* --
 * working sets, sharing pattern, irregularity and the remote-access
 * fraction of Table 1 -- which is everything a replacement policy can
 * observe.  See DESIGN.md ("Substitutions") for the faithfulness
 * argument.
 *
 * A workload describes P cooperating processors.  Each processor's
 * access sequence is exposed as an independent, deterministic
 * ProcAccessStream so the same workload object can feed
 *   - the trace-driven study (streams interleaved by
 *     SampledTraceBuilder, then filtered to the sampled processor's
 *     accesses plus remote writes), and
 *   - the execution-driven NUMA simulator (each simulated processor
 *     pulls from its own stream at its own pace).
 */

#ifndef CSR_TRACE_WORKLOAD_H
#define CSR_TRACE_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <string>

#include "trace/TraceRecord.h"
#include "util/Types.h"

namespace csr
{

/** A single processor's deterministic access sequence. */
class ProcAccessStream
{
  public:
    virtual ~ProcAccessStream() = default;

    /**
     * Produce the next access of this processor.
     * @return false when the processor's program is finished.
     */
    virtual bool next(MemAccess &out) = 0;
};

/**
 * A P-processor synthetic program.
 *
 * Streams returned by procStream() are deterministic functions of
 * (workload parameters, seed, proc), so any subset can be regenerated
 * independently and concurrently.
 */
class SyntheticWorkload
{
  public:
    virtual ~SyntheticWorkload() = default;

    /** Benchmark name ("barnes", "lu", "ocean", "raytrace"). */
    virtual std::string name() const = 0;

    /** Number of cooperating processors. */
    virtual ProcId numProcs() const = 0;

    /** Total bytes of shared data touched (Table 1 "Mem. usage"). */
    virtual std::uint64_t memoryBytes() const = 0;

    /** Fresh stream of processor @p p's accesses, from the start. */
    virtual std::unique_ptr<ProcAccessStream> procStream(ProcId p) const = 0;
};

} // namespace csr

#endif // CSR_TRACE_WORKLOAD_H
