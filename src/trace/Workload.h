/**
 * @file
 * Synthetic multiprocessor workload interfaces.
 *
 * The paper evaluates on four SPLASH-2 benchmarks (Barnes, LU, Ocean,
 * Raytrace).  We do not have the original traces or a SPARC
 * execution environment, so each benchmark is substituted by a
 * generator that reproduces the documented *access structure* --
 * working sets, sharing pattern, irregularity and the remote-access
 * fraction of Table 1 -- which is everything a replacement policy can
 * observe.  See DESIGN.md ("Substitutions") for the faithfulness
 * argument.
 *
 * A workload describes P cooperating processors.  Each processor's
 * access sequence is exposed as an independent, deterministic
 * ProcAccessStream so the same workload object can feed
 *   - the trace-driven study (streams interleaved by
 *     SampledTraceBuilder, then filtered to the sampled processor's
 *     accesses plus remote writes), and
 *   - the execution-driven NUMA simulator (each simulated processor
 *     pulls from its own stream at its own pace).
 */

#ifndef CSR_TRACE_WORKLOAD_H
#define CSR_TRACE_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <string>

#include "trace/TraceRecord.h"
#include "util/Types.h"

namespace csr
{

/**
 * Problem-size presets.
 *
 *  - Test:   seconds-long unit-test scale;
 *  - Small:  the default bench scale (~10^5..10^6 sampled refs), used
 *            for the table/figure reproductions;
 *  - Full:   the paper's trace-study scale (tens of millions of
 *            references); expect multi-minute bench runs.
 */
enum class WorkloadScale
{
    Test,
    Small,
    Full,
};

/**
 * Uniform construction parameters for every benchmark.
 *
 * The four *Workload classes used to be configured through four
 * unrelated Params ctor signatures; the factory (and any direct
 * caller) now describes a workload with one WorkloadConfig.  The
 * override fields treat zero as "keep the benchmark's default".
 */
struct WorkloadConfig
{
    /** Benchmark name ("barnes", "lu", "ocean", "raytrace"). */
    std::string name = "barnes";
    /** Processor count override (0 = the benchmark's Table 1 count). */
    ProcId numProcs = 0;
    /** Generator seed override (0 = the benchmark's fixed seed). */
    std::uint64_t seed = 0;
    WorkloadScale scale = WorkloadScale::Small;
    /** Section 4.2 problem shrink for the NUMA study. */
    bool numaSized = false;
    /** Reference budget override (0 = derived from scale). */
    std::uint64_t targetRefsPerProc = 0;
};

/**
 * Apply the uniform WorkloadConfig overrides to any benchmark Params
 * type (all four have numProcs / seed / targetRefsPerProc fields).
 */
template <typename Params>
Params
applyWorkloadConfig(Params params, const WorkloadConfig &config)
{
    if (config.numProcs)
        params.numProcs = config.numProcs;
    if (config.seed)
        params.seed = config.seed;
    if (config.targetRefsPerProc)
        params.targetRefsPerProc = config.targetRefsPerProc;
    return params;
}

/** A single processor's deterministic access sequence. */
class ProcAccessStream
{
  public:
    virtual ~ProcAccessStream() = default;

    /**
     * Produce the next access of this processor.
     * @return false when the processor's program is finished.
     */
    virtual bool next(MemAccess &out) = 0;
};

/**
 * A P-processor synthetic program.
 *
 * Streams returned by procStream() are deterministic functions of
 * (workload parameters, seed, proc), so any subset can be regenerated
 * independently and concurrently.
 */
class SyntheticWorkload
{
  public:
    virtual ~SyntheticWorkload() = default;

    /** Benchmark name ("barnes", "lu", "ocean", "raytrace"). */
    virtual std::string name() const = 0;

    /** Number of cooperating processors. */
    virtual ProcId numProcs() const = 0;

    /** Total bytes of shared data touched (Table 1 "Mem. usage"). */
    virtual std::uint64_t memoryBytes() const = 0;

    /** Fresh stream of processor @p p's accesses, from the start. */
    virtual std::unique_ptr<ProcAccessStream> procStream(ProcId p) const = 0;
};

} // namespace csr

#endif // CSR_TRACE_WORKLOAD_H
