/**
 * @file
 * Barnes-Hut N-body workload generator.
 *
 * SPLASH-2 Barnes computes gravitational forces with a hierarchical
 * octree.  Its trace signature, per the paper: data-dependent and
 * irregular accesses, a moderate primary working set (~8 KB knee),
 * and a high remote-access fraction (44.8% under per-block first
 * touch).  The generator models:
 *
 *   - NB bodies of two cache blocks each, owned in chunks that are
 *     block-cyclically distributed over the processors (SPLASH
 *     re-partitions bodies each step; chunked-cyclic ownership gives
 *     the same "my bodies are local, neighbours often are not");
 *   - a cell tree of single-block cells written during a per-step
 *     build phase by their owning processor (first touch ==> most
 *     cells are remote to any given processor) and read along
 *     root-to-leaf paths during the force phase (upper levels form a
 *     very hot shared working set);
 *   - per-body force computation: read own body, read a tree path,
 *     read a set of neighbour bodies (local with probability
 *     localNeighborFrac, tuned so the sampled processor's remote
 *     fraction lands at Table 1's 44.8%), write own body.
 */

#ifndef CSR_TRACE_BARNESWORKLOAD_H
#define CSR_TRACE_BARNESWORKLOAD_H

#include "trace/Workload.h"

namespace csr
{

/** Tunables of the Barnes-like generator. */
struct BarnesParams
{
    ProcId numProcs = 8;
    std::uint32_t numBodies = 4096;     ///< paper: 64K; scaled
    std::uint32_t blocksPerBody = 2;    ///< 128 B per body
    std::uint32_t numCells = 2048;      ///< tree cells, 64 B each
    std::uint32_t treePathLen = 8;      ///< cells read per force calc
    std::uint32_t neighborsPerBody = 12;
    /** Bodies per spatial interaction group.  A group's force and
     *  correction passes touch the same deterministic interaction
     *  set, producing reuse at stack distances just past the L2's
     *  associativity (the property reservations exploit). */
    std::uint32_t groupBodies = 32;
    /** Neighbour reads draw their group at a power-law distance from
     *  the body's own group: P(distance g) ~ 1/(1+g)^alpha over
     *  g in [0, groupSpread).  Nearby groups are re-read often (hot),
     *  far ones rarely (long reuse distances), and the groups in
     *  between produce exactly the just-past-associativity reuse that
     *  real irregular traversals have and reservations exploit. */
    std::uint32_t groupSpread = 10;
    double neighborAlpha = 1.2;
    /** Fraction of neighbour reads that jump anywhere (irregular
     *  far-field reads -- dead blocks that pollute the cache). */
    double farReadFrac = 0.02;
    /** Per-body writes to the processor-local interaction-list
     *  scratch area, a large circular buffer.  These blocks stream
     *  (dead once written past), providing the low-cost,
     *  low-locality blocks that reservations sacrifice cheaply. */
    std::uint32_t scratchPerBody = 7;
    std::uint32_t scratchBlocks = 2048;
    /** Reads of tree cells in the adjacent processors' regions
     *  (boundary interactions): remote blocks with reuse. */
    std::uint32_t boundaryCellReads = 2;
    /** Ownership granularity.  Equal to groupBodies, so the sliding
     *  neighbour window spans ownership boundaries and remote bodies
     *  get the same medium-distance reuse as local ones. */
    std::uint32_t chunkBodies = 32;
    std::uint64_t targetRefsPerProc = 1000000;
    std::uint64_t seed = 1;
};

/** Barnes-Hut-like synthetic workload (see file comment). */
class BarnesWorkload : public SyntheticWorkload
{
  public:
    explicit BarnesWorkload(const BarnesParams &params = {});

    /** Params plus the factory's uniform overrides (nonzero
     *  config.numProcs / seed / targetRefsPerProc win). */
    BarnesWorkload(const BarnesParams &params,
                   const WorkloadConfig &config)
        : BarnesWorkload(applyWorkloadConfig(params, config))
    {
    }

    std::string name() const override { return "barnes"; }
    ProcId numProcs() const override { return params_.numProcs; }
    std::uint64_t memoryBytes() const override;
    std::unique_ptr<ProcAccessStream> procStream(ProcId p) const override;

    const BarnesParams &params() const { return params_; }

    /** Owner of a body (chunked block-cyclic). */
    ProcId ownerOfBody(std::uint32_t body) const;

  private:
    BarnesParams params_;
};

} // namespace csr

#endif // CSR_TRACE_BARNESWORKLOAD_H
