#include "trace/SampledTrace.h"

#include "util/Logging.h"
#include "util/Random.h"

namespace csr
{

SampledTrace
buildSampledTrace(const SyntheticWorkload &workload, ProcId sampled,
                  std::uint32_t block_bytes, std::uint32_t burst,
                  std::uint64_t seed)
{
    const ProcId procs = workload.numProcs();
    csr_assert(sampled < procs, "sampled proc out of range");
    csr_assert(burst > 0, "burst must be positive");

    SampledTrace out;
    out.benchmark = workload.name();
    out.sampledProc = sampled;
    out.blockBytes = block_bytes;

    std::vector<std::unique_ptr<ProcAccessStream>> streams;
    streams.reserve(procs);
    for (ProcId p = 0; p < procs; ++p)
        streams.push_back(workload.procStream(p));

    std::vector<bool> alive(procs, true);
    ProcId live = procs;
    Rng jitter(seed);

    std::uint64_t sampled_remote = 0;
    MemAccess acc;

    while (live > 0) {
        for (ProcId p = 0; p < procs; ++p) {
            if (!alive[p])
                continue;
            // Jittered burst length: 50%..150% of the nominal burst.
            const std::uint64_t len =
                burst / 2 + jitter.nextBelow(burst) + 1;
            for (std::uint64_t i = 0; i < len; ++i) {
                if (!streams[p]->next(acc)) {
                    alive[p] = false;
                    --live;
                    break;
                }
                const Addr block = acc.addr / block_bytes;
                auto [it, inserted] = out.homeOf.try_emplace(block, p);
                (void)it;
                (void)inserted;
                if (p == sampled) {
                    ++out.sampledRefs;
                    if (out.homeOf[block] != sampled)
                        ++sampled_remote;
                    out.records.push_back({acc.addr,
                                           static_cast<std::uint16_t>(p),
                                           acc.write});
                } else if (acc.write) {
                    out.records.push_back({acc.addr,
                                           static_cast<std::uint16_t>(p),
                                           true});
                }
            }
        }
    }

    out.touchedBytes =
        static_cast<std::uint64_t>(out.homeOf.size()) * block_bytes;
    out.remoteAccessFraction =
        out.sampledRefs
            ? static_cast<double>(sampled_remote) /
                  static_cast<double>(out.sampledRefs)
            : 0.0;
    return out;
}

} // namespace csr
