#include "trace/BarnesWorkload.h"

#include "trace/BatchStream.h"
#include "util/Logging.h"
#include <cmath>

#include "util/MathUtil.h"
#include "util/Random.h"

namespace csr
{

namespace
{

/** Base byte addresses of the workload's data regions. */
constexpr Addr kBodyBase = 0x10000000;
constexpr Addr kCellBase = 0x20000000;
constexpr Addr kScratchBase = 0x30000000;
constexpr Addr kBlockBytes = 64;

/** One processor's Barnes program. */
class BarnesStream : public BatchStream
{
  public:
    BarnesStream(const BarnesWorkload &workload, ProcId proc)
        : BatchStream(workload.params().targetRefsPerProc), wl_(workload),
          p_(workload.params()), proc_(proc),
          rng_(hashMix64(p_.seed * 0x9E37 + proc + 1))
    {
    }

  protected:
    void
    refill() override
    {
        if (phase_ == Phase::Init) {
            emitInit();
            phase_ = Phase::TreeBuild;
            return;
        }
        if (phase_ == Phase::TreeBuild) {
            emitTreeBuild();
            phase_ = Phase::Force;
            groupCursor_ = 0;
            passCursor_ = 0;
            return;
        }
        // Force phase: one pass over one owned group per refill.
        // Each group is processed twice (force evaluation, then the
        // correction/update pass re-reading the same interaction
        // set), which is the source of Barnes's reuse at stack
        // distances just beyond the cache associativity.
        while (groupCursor_ < groupCount() &&
               wl_.ownerOfBody(groupCursor_ * p_.groupBodies) != proc_) {
            ++groupCursor_;
        }
        if (groupCursor_ >= groupCount()) {
            // Timestep complete; start the next one.
            ++step_;
            groupCursor_ = 0;
            passCursor_ = 0;
            phase_ = Phase::TreeBuild;
            return;
        }
        emitGroupPass(groupCursor_, passCursor_ == 1);
        if (++passCursor_ >= 2) {
            passCursor_ = 0;
            ++groupCursor_;
        }
    }

  private:
    enum class Phase
    {
        Init,
        TreeBuild,
        Force,
    };

    Addr
    bodyAddr(std::uint32_t body, std::uint32_t blk) const
    {
        return kBodyBase +
               (static_cast<Addr>(body) * p_.blocksPerBody + blk) *
                   kBlockBytes;
    }

    Addr
    cellAddr(std::uint32_t cell) const
    {
        return kCellBase + static_cast<Addr>(cell) * kBlockBytes;
    }

    /**
     * Spatial cell ownership.  The tree is indexed breadth-first:
     * level l occupies [2^l, 2^l + span).  A cell's position within
     * its level corresponds to a spatial region, and the processor
     * whose bodies occupy that region builds (and first-touches) the
     * cell -- exactly how a space-partitioned Barnes tree behaves.
     * Levels with fewer cells than processors stay shared top levels.
     */
    ProcId
    ownerOfCell(std::uint32_t cell) const
    {
        if (cell == 0)
            return 0;
        const std::uint32_t level =
            static_cast<std::uint32_t>(floorLog2(cell));
        const std::uint32_t lo = 1u << level;
        const std::uint32_t span = std::min(lo, p_.numCells - lo);
        const std::uint32_t idx = cell - lo;
        return static_cast<ProcId>(
            static_cast<std::uint64_t>(idx) * p_.numProcs / span);
    }

    /** Initialization: every processor writes its own bodies before
     *  any cross-body reads happen, so first-touch homes bodies at
     *  their owners (SPLASH Barnes initializes body state in
     *  parallel; without this, random force-phase readers would
     *  steal the first touch). */
    void
    emitInit()
    {
        for (std::uint32_t body = 0; body < p_.numBodies; ++body) {
            if (wl_.ownerOfBody(body) != proc_)
                continue;
            for (std::uint32_t b = 0; b < p_.blocksPerBody; ++b)
                emit(bodyAddr(body, b), true, 1);
        }
    }

    void
    emitTreeBuild()
    {
        // Write every owned cell; sprinkle reads of the root region
        // (parent links) to mimic concurrent tree construction.
        for (std::uint32_t c = 0; c < p_.numCells; ++c) {
            if (ownerOfCell(c) != proc_)
                continue;
            if ((c & 7u) == 0)
                emit(cellAddr(c % 16), false, 1); // read near the root
            emit(cellAddr(c), true, 3);
        }
    }

    std::uint32_t
    groupCount() const
    {
        return (p_.numBodies + p_.groupBodies - 1) / p_.groupBodies;
    }

    /** Group distance drawn with P(g) ~ 1/(1+g)^alpha via inverse
     *  transform on the (small) discrete distribution. */
    std::uint32_t
    powerLawDistance(Rng &draw) const
    {
        const std::uint32_t spread =
            std::min(p_.groupSpread, groupCount());
        double total = 0.0;
        for (std::uint32_t g = 0; g < spread; ++g)
            total += 1.0 / std::pow(1.0 + g, p_.neighborAlpha);
        double u = draw.nextDouble() * total;
        for (std::uint32_t g = 0; g < spread; ++g) {
            u -= 1.0 / std::pow(1.0 + g, p_.neighborAlpha);
            if (u <= 0.0)
                return g;
        }
        return spread - 1;
    }

    /** One pass over a group: the force calculation of every body in
     *  it.  All irregular draws are deterministic in (body, step), so
     *  both passes of a group touch the same blocks. */
    void
    emitGroupPass(std::uint32_t group, bool update_pass)
    {
        // The top tree levels are read once per pass (real code keeps
        // them in registers while walking a group of nearby bodies).
        emit(cellAddr(0), false, 1);
        for (std::uint32_t l = 1; l <= 2 && (1u << l) < p_.numCells; ++l) {
            const std::uint32_t lo = 1u << l;
            const std::uint32_t span = std::min(lo, p_.numCells - lo);
            emit(cellAddr(lo + (group % span)), false, 1);
        }
        const std::uint32_t first = group * p_.groupBodies;
        const std::uint32_t last =
            std::min(first + p_.groupBodies, p_.numBodies);
        for (std::uint32_t body = first; body < last; ++body)
            emitForceCalc(body, update_pass);
    }

    void
    emitForceCalc(std::uint32_t body, bool update_pass)
    {
        // Pass-independent deterministic stream for this body/step.
        Rng draw(hashMix64(p_.seed ^ (static_cast<std::uint64_t>(body)
                                      << 20) ^ (step_ / 2)));
        // Read own body state.
        for (std::uint32_t b = 0; b < p_.blocksPerBody; ++b)
            emit(bodyAddr(body, b), false, 1);

        // Walk the body's tree path below the shared top levels.
        // Spatially adjacent bodies (same interaction group) share
        // most of their path -- deeper levels change more often.
        const std::uint32_t group = body / p_.groupBodies;
        for (std::uint32_t l = 3; l <= p_.treePathLen; ++l) {
            const std::uint32_t lo = 1u << l;
            if (lo >= p_.numCells)
                break;
            const std::uint32_t span =
                std::min(1u << l, p_.numCells - lo);
            // The path follows the body's spatial position: the cell
            // index within the level tracks body/numBodies, with
            // group-level jitter above and per-body, per-step jitter
            // below.  Deep cells therefore tend to be owner-local.
            const std::uint64_t spatial =
                static_cast<std::uint64_t>(body) * span / p_.numBodies;
            const std::uint64_t jitter =
                l <= p_.treePathLen / 2
                    ? hashMix64(p_.seed ^ (group * 977u) ^ (step_ << 8) ^ l)
                    : hashMix64(p_.seed ^ (body * 2654435761u) ^
                                (step_ << 8) ^ l);
            const std::uint32_t idx = static_cast<std::uint32_t>(
                (spatial + jitter % (span / 8 + 1)) % span);
            emit(cellAddr(lo + idx), false, 2);
        }

        // Boundary interactions: cells of the adjacent spatial
        // regions (other processors' subtrees) -- remote blocks that
        // the whole group re-reads, i.e. reusable high-cost data.
        for (std::uint32_t k = 0; k < p_.boundaryCellReads; ++k) {
            const std::uint32_t l = p_.treePathLen / 2 + 1 + k;
            const std::uint32_t lo = 1u << l;
            if (lo >= p_.numCells)
                break;
            const std::uint32_t span = std::min(lo, p_.numCells - lo);
            const std::uint64_t spatial =
                static_cast<std::uint64_t>(body) * span / p_.numBodies;
            const std::uint64_t shift =
                std::max<std::uint64_t>(1, span / p_.numProcs);
            const std::uint32_t idx = static_cast<std::uint32_t>(
                (spatial + (k % 2 ? shift : span - shift) +
                 hashMix64(group ^ (step_ << 8) ^ k) % (shift / 2 + 1)) %
                span);
            emit(cellAddr(lo + idx), false, 2);
        }

        // Read neighbour bodies at power-law group distances (see
        // BarnesParams::groupSpread).  A small fraction of reads jump
        // anywhere (far cells opened by the multipole acceptance
        // test -- pure pollution).
        for (std::uint32_t k = 0; k < p_.neighborsPerBody; ++k) {
            std::uint32_t other;
            if (draw.nextBool(p_.farReadFrac)) {
                other = static_cast<std::uint32_t>(
                    draw.nextBelow(p_.numBodies));
            } else {
                const std::uint32_t dist = powerLawDistance(draw);
                const std::uint32_t dir_group =
                    draw.nextBool(0.5)
                        ? group + dist
                        : group + groupCount() - dist;
                other = (dir_group % groupCount()) * p_.groupBodies +
                        static_cast<std::uint32_t>(
                            draw.nextBelow(p_.groupBodies));
                other %= p_.numBodies;
            }
            emit(bodyAddr(other, 0), false, 2);
        }

        // Interaction-list scratch: processor-local streaming writes
        // (dead blocks once the cursor moves on).
        const Addr scratch_base =
            kScratchBase + static_cast<Addr>(proc_) * 0x1000000;
        for (std::uint32_t s = 0; s < p_.scratchPerBody; ++s) {
            emit(scratch_base + (scratchCursor_ % p_.scratchBlocks) *
                                    kBlockBytes,
                 true, 1);
            ++scratchCursor_;
        }

        // The correction pass updates the body; the force pass only
        // reads (position data stays clean between updates, so other
        // processors' cached copies of it survive a whole step).
        if (update_pass) {
            for (std::uint32_t b = 0; b < p_.blocksPerBody; ++b)
                emit(bodyAddr(body, b), true, 2);
        }
    }

    const BarnesWorkload &wl_;
    const BarnesParams &p_;
    ProcId proc_;
    Rng rng_;
    Phase phase_ = Phase::Init;
    std::uint32_t groupCursor_ = 0;
    std::uint32_t passCursor_ = 0;
    std::uint64_t scratchCursor_ = 0;
    std::uint32_t step_ = 0;
};

} // namespace

BarnesWorkload::BarnesWorkload(const BarnesParams &params) : params_(params)
{
    csr_assert(params_.numProcs > 0 && params_.numBodies > 0,
               "empty Barnes configuration");
}

std::uint64_t
BarnesWorkload::memoryBytes() const
{
    return static_cast<std::uint64_t>(params_.numBodies) *
               params_.blocksPerBody * kBlockBytes +
           static_cast<std::uint64_t>(params_.numCells) * kBlockBytes;
}

std::unique_ptr<ProcAccessStream>
BarnesWorkload::procStream(ProcId p) const
{
    csr_assert(p < params_.numProcs, "proc out of range");
    return std::make_unique<BarnesStream>(*this, p);
}

ProcId
BarnesWorkload::ownerOfBody(std::uint32_t body) const
{
    return (body / params_.chunkBodies) % params_.numProcs;
}

} // namespace csr
