#include "trace/StackDistance.h"

#include <list>
#include <unordered_map>

#include "util/Logging.h"

namespace csr
{

double
StackDistanceProfile::fractionInBand(std::uint32_t lo,
                                     std::uint32_t hi) const
{
    if (total == 0)
        return 0.0;
    std::uint64_t in_band = 0;
    for (std::uint32_t d = lo; d <= hi && d <= byDistance.size(); ++d)
        in_band += byDistance[d - 1];
    return static_cast<double>(in_band) / static_cast<double>(total);
}

double
StackDistanceProfile::hitFraction(std::uint32_t assoc) const
{
    return fractionInBand(1, assoc);
}

StackDistanceReport
profileStackDistances(const SampledTrace &trace,
                      const CacheGeometry &geom,
                      std::uint32_t max_distance)
{
    csr_assert(max_distance > 0, "max_distance must be positive");
    StackDistanceReport report;
    report.local.byDistance.assign(max_distance, 0);
    report.remote.byDistance.assign(max_distance, 0);

    // Unbounded per-set LRU stacks of block addresses.
    std::vector<std::list<Addr>> stacks(geom.numSets());

    auto remove_from = [](std::list<Addr> &stack, Addr block) -> int {
        int distance = 0;
        for (auto it = stack.begin(); it != stack.end(); ++it) {
            ++distance;
            if (*it == block) {
                stack.erase(it);
                return distance;
            }
        }
        return 0; // not present
    };

    for (const auto &record : trace.records) {
        const Addr byte_addr = record.addr;
        auto &stack = stacks[geom.setIndex(byte_addr)];
        const Addr block = geom.blockAddr(byte_addr);

        if (record.proc != trace.sampledProc) {
            // Invalidation: the block leaves the stack; its next
            // access is a (coherence) cold miss.
            remove_from(stack, block);
            continue;
        }

        StackDistanceProfile &profile =
            trace.isRemote(block) ? report.remote : report.local;
        ++profile.total;
        const int distance = remove_from(stack, block);
        if (distance == 0) {
            ++profile.coldMisses;
        } else {
            const auto bucket = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(distance), max_distance);
            ++profile.byDistance[bucket - 1];
        }
        stack.push_front(block);
        // Bound memory: reuse deeper than 4x the histogram range is
        // indistinguishable from a cold miss for every consumer of
        // this profile, so the stack tail can be dropped.
        if (stack.size() > 4 * max_distance)
            stack.pop_back();
    }
    return report;
}

} // namespace csr
