/**
 * @file
 * Construction of the four paper benchmarks at several scales.
 */

#ifndef CSR_TRACE_WORKLOADFACTORY_H
#define CSR_TRACE_WORKLOADFACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "trace/Workload.h"

namespace csr
{

/**
 * Problem-size presets.
 *
 *  - Test:   seconds-long unit-test scale;
 *  - Small:  the default bench scale (~10^5..10^6 sampled refs), used
 *            for the table/figure reproductions;
 *  - Full:   the paper's trace-study scale (tens of millions of
 *            references); expect multi-minute bench runs.
 */
enum class WorkloadScale
{
    Test,
    Small,
    Full,
};

/** Benchmark selector. */
enum class BenchmarkId
{
    Barnes,
    Lu,
    Ocean,
    Raytrace,
};

/** The four paper benchmarks in Table 1 order. */
const std::vector<BenchmarkId> &paperBenchmarks();

/** Display name ("Barnes", "LU", "Ocean", "Raytrace"). */
std::string benchmarkName(BenchmarkId id);

/** Parse a benchmark name (case-insensitive); fatal on unknown. */
BenchmarkId parseBenchmark(const std::string &name);

/** Build a benchmark at a given scale.  The NUMA study uses smaller
 *  problems than the trace study (Section 4.2); pass numa_sized=true
 *  for those (fewer refs per processor, 16-processor Ocean stays at
 *  16, others keep their Table 1 processor counts). */
std::unique_ptr<SyntheticWorkload> makeWorkload(BenchmarkId id,
                                                WorkloadScale scale,
                                                bool numa_sized = false);

} // namespace csr

#endif // CSR_TRACE_WORKLOADFACTORY_H
