/**
 * @file
 * Construction of the four paper benchmarks at several scales.
 */

#ifndef CSR_TRACE_WORKLOADFACTORY_H
#define CSR_TRACE_WORKLOADFACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "trace/Workload.h"

namespace csr
{

/** Benchmark selector.  (WorkloadScale and WorkloadConfig live in
 *  trace/Workload.h so the *Workload ctors can consume them.) */
enum class BenchmarkId
{
    Barnes,
    Lu,
    Ocean,
    Raytrace,
};

/** The four paper benchmarks in Table 1 order. */
const std::vector<BenchmarkId> &paperBenchmarks();

/** Display name ("Barnes", "LU", "Ocean", "Raytrace"). */
std::string benchmarkName(BenchmarkId id);

/** Parse a benchmark name (case-insensitive); fatal on unknown. */
BenchmarkId parseBenchmark(const std::string &name);

/**
 * Build a benchmark from the unified config: config.name selects the
 * benchmark (fatal on unknown), config.scale / config.numaSized pick
 * the problem-size preset (the NUMA study uses smaller problems than
 * the trace study, Section 4.2), and the nonzero override fields
 * (numProcs, seed, targetRefsPerProc) replace the preset's values.
 */
std::unique_ptr<SyntheticWorkload> makeWorkload(
    const WorkloadConfig &config);

/** Shorthand for the common (benchmark, scale) case. */
std::unique_ptr<SyntheticWorkload> makeWorkload(BenchmarkId id,
                                                WorkloadScale scale,
                                                bool numa_sized = false);

} // namespace csr

#endif // CSR_TRACE_WORKLOADFACTORY_H
