/**
 * @file
 * Per-set LRU stack-distance profiling.
 *
 * The effectiveness of the paper's reservations hinges on one trace
 * property: reuse at per-set stack distances *just beyond* the cache
 * associativity (a block at distance s..s+k can be saved by a
 * reservation that survives k sacrifices; one at distance <= s hits
 * under plain LRU anyway; one far beyond is unreachable).  This
 * profiler measures that property directly -- split by cost class --
 * and is used both by the workload-calibration tests and by the
 * analysis bench.
 */

#ifndef CSR_TRACE_STACKDISTANCE_H
#define CSR_TRACE_STACKDISTANCE_H

#include <cstdint>
#include <vector>

#include "cache/CacheGeometry.h"
#include "trace/SampledTrace.h"

namespace csr
{

/** Stack-distance histogram of one cost class. */
struct StackDistanceProfile
{
    /** Counts by per-set LRU stack distance; index 0 holds distance
     *  1 (MRU re-reference), the last bucket is open-ended. */
    std::vector<std::uint64_t> byDistance;
    std::uint64_t coldMisses = 0; ///< first touches
    std::uint64_t total = 0;

    /** Fraction of accesses with distance in [lo, hi] (1-based). */
    double fractionInBand(std::uint32_t lo, std::uint32_t hi) const;
    /** Fraction of accesses that would hit in an s-way LRU set. */
    double hitFraction(std::uint32_t assoc) const;
};

/** Profiles for the local (home == sampled) and remote classes. */
struct StackDistanceReport
{
    StackDistanceProfile local;
    StackDistanceProfile remote;
};

/**
 * Compute per-set stack distances of the sampled processor's
 * accesses under the given cache geometry, honouring the trace's
 * invalidations (an invalidated block's next access is a cold miss).
 *
 * @param max_distance distances beyond this land in the last bucket
 */
StackDistanceReport profileStackDistances(const SampledTrace &trace,
                                          const CacheGeometry &geom,
                                          std::uint32_t max_distance = 64);

} // namespace csr

#endif // CSR_TRACE_STACKDISTANCE_H
