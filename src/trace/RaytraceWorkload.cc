#include "trace/RaytraceWorkload.h"

#include "trace/BatchStream.h"
#include "util/Logging.h"
#include "util/Random.h"

namespace csr
{

namespace
{

constexpr Addr kSceneBase = 0x100000000;
constexpr Addr kScratchBase = 0x200000000;
constexpr Addr kFrameBase = 0x300000000;
constexpr Addr kBlockBytes = 64;
constexpr Addr kProcStride = 0x01000000; // private-region spacing

/** One processor's Raytrace program; one ray per refill. */
class RaytraceStream : public BatchStream
{
  public:
    RaytraceStream(const RaytraceWorkload &workload, ProcId proc)
        : BatchStream(workload.params().targetRefsPerProc),
          p_(workload.params()), proc_(proc),
          rng_(hashMix64(p_.seed * 0x4A7 + proc + 1))
    {
        lobes_.resize(p_.numLobes);
        for (auto &lobe : lobes_)
            lobe = rng_.nextBelow(p_.sceneBlocks);
    }

  protected:
    void
    refill() override
    {
        emitRay();
        ++ray_;
    }

  private:
    Addr
    sceneAddr(std::uint64_t block) const
    {
        return kSceneBase + block * kBlockBytes;
    }

    /** Wrap a possibly negative scene position into range. */
    std::uint64_t
    wrap(std::int64_t pos) const
    {
        const auto n = static_cast<std::int64_t>(p_.sceneBlocks);
        return static_cast<std::uint64_t>(((pos % n) + n) % n);
    }

    void
    emitRay()
    {
        // Hierarchy top: a handful of extremely hot shared blocks.
        for (std::uint32_t i = 0; i < 3; ++i) {
            emit(sceneAddr(rng_.nextBelow(p_.hotRootBlocks)), false, 1);
        }

        // Pick the lobe this ray belongs to (eye cluster, a shadow
        // ray toward one of the lights, a reflection).  Lobe 0 is the
        // shared light-source region: every processor shoots shadow
        // rays at the same slowly-moving scene area, so its blocks
        // are first-touched by somebody else and stay remote-but-
        // reused.  Other lobes drift privately.
        const std::size_t li =
            rng_.nextBool(0.3)
                ? 0
                : 1 + rng_.nextBelow(p_.numLobes - 1);
        if (li == 0) {
            lobes_[0] = hashMix64(p_.seed ^ (ray_ / 4096)) %
                        p_.sceneBlocks;
        } else if (rng_.nextBool(p_.lobeJumpProb)) {
            lobes_[li] = rng_.nextBelow(p_.sceneBlocks);
        } else {
            lobes_[li] = wrap(static_cast<std::int64_t>(lobes_[li]) +
                              rng_.nextRange(-static_cast<std::int64_t>(
                                                 p_.lobeDrift),
                                             static_cast<std::int64_t>(
                                                 p_.lobeDrift)));
        }

        // Grid walk within the lobe's span.
        const std::int64_t half =
            static_cast<std::int64_t>(p_.lobeSpanBlocks) / 2;
        std::uint64_t pos = lobes_[li];
        for (std::uint32_t s = 0; s < p_.walkSteps; ++s) {
            pos = wrap(static_cast<std::int64_t>(lobes_[li]) +
                       rng_.nextRange(-half, half));
            emit(sceneAddr(pos), false, 2);
        }

        // Shading: object/material data adjacent to the hit point.
        for (std::uint32_t s = 0; s < p_.shadingReads; ++s)
            emit(sceneAddr((pos + s + 1) % p_.sceneBlocks), false, 2);

        // Local ray-stack scratch (hot, processor-private).
        const Addr scratch_base = kScratchBase + proc_ * kProcStride;
        for (std::uint32_t s = 0; s < p_.scratchAccesses; ++s) {
            const Addr block = rng_.nextBelow(p_.scratchBlocks);
            emit(scratch_base + block * kBlockBytes, (s & 3u) == 3u, 1);
        }

        // Streaming local work (ray packets, tile staging): cycling
        // writes through a large buffer, dead once written past.
        const Addr stream_base =
            kScratchBase + 0x800000 + proc_ * kProcStride;
        for (std::uint32_t s = 0; s < p_.streamAccesses; ++s) {
            emit(stream_base +
                     (streamCursor_ % p_.streamBlocks) * kBlockBytes,
                 true, 1);
            ++streamCursor_;
        }

        // Framebuffer: sequential writes within this processor's tile.
        const Addr fb_base = kFrameBase + proc_ * kProcStride;
        const Addr fb_block = (ray_ / 8) % p_.framebufferBlocks;
        emit(fb_base + fb_block * kBlockBytes, true, 2);
        emit(fb_base + fb_block * kBlockBytes, true, 1);
    }

    const RaytraceParams &p_;
    ProcId proc_;
    Rng rng_;
    std::vector<std::uint64_t> lobes_;
    std::uint64_t streamCursor_ = 0;
    std::uint64_t ray_ = 0;
};

} // namespace

RaytraceWorkload::RaytraceWorkload(const RaytraceParams &params)
    : params_(params)
{
    csr_assert(params_.numProcs > 0 && params_.sceneBlocks > 64,
               "empty Raytrace configuration");
}

std::uint64_t
RaytraceWorkload::memoryBytes() const
{
    return (static_cast<std::uint64_t>(params_.sceneBlocks) +
            static_cast<std::uint64_t>(params_.numProcs) *
                (params_.scratchBlocks + params_.framebufferBlocks)) *
           kBlockBytes;
}

std::unique_ptr<ProcAccessStream>
RaytraceWorkload::procStream(ProcId p) const
{
    csr_assert(p < params_.numProcs, "proc out of range");
    return std::make_unique<RaytraceStream>(*this, p);
}

} // namespace csr
