#include "trace/WorkloadFactory.h"

#include <algorithm>
#include <cctype>

#include "trace/BarnesWorkload.h"
#include "trace/LuWorkload.h"
#include "trace/OceanWorkload.h"
#include "trace/RaytraceWorkload.h"
#include "util/Logging.h"

namespace csr
{

const std::vector<BenchmarkId> &
paperBenchmarks()
{
    static const std::vector<BenchmarkId> ids = {
        BenchmarkId::Barnes,
        BenchmarkId::Lu,
        BenchmarkId::Ocean,
        BenchmarkId::Raytrace,
    };
    return ids;
}

std::string
benchmarkName(BenchmarkId id)
{
    switch (id) {
      case BenchmarkId::Barnes:
        return "Barnes";
      case BenchmarkId::Lu:
        return "LU";
      case BenchmarkId::Ocean:
        return "Ocean";
      case BenchmarkId::Raytrace:
        return "Raytrace";
    }
    return "?";
}

BenchmarkId
parseBenchmark(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "barnes")
        return BenchmarkId::Barnes;
    if (lower == "lu")
        return BenchmarkId::Lu;
    if (lower == "ocean")
        return BenchmarkId::Ocean;
    if (lower == "raytrace")
        return BenchmarkId::Raytrace;
    csr_fatal("unknown benchmark '%s'", name.c_str());
}

namespace
{

/** Sampled-processor reference budget per scale. */
std::uint64_t
refBudget(WorkloadScale scale, bool numa_sized)
{
    switch (scale) {
      case WorkloadScale::Test:
        return numa_sized ? 4000 : 20000;
      case WorkloadScale::Small:
        return numa_sized ? 60000 : 800000;
      case WorkloadScale::Full:
        return numa_sized ? 400000 : 12000000;
    }
    return 0;
}

} // namespace

std::unique_ptr<SyntheticWorkload>
makeWorkload(const WorkloadConfig &config)
{
    const BenchmarkId id = parseBenchmark(config.name);
    const WorkloadScale scale = config.scale;
    const bool numa_sized = config.numaSized;
    const std::uint64_t refs = refBudget(scale, numa_sized);
    switch (id) {
      case BenchmarkId::Barnes: {
        BarnesParams p;
        p.targetRefsPerProc = refs;
        if (scale == WorkloadScale::Test) {
            p.numBodies = 512;
            p.numCells = 256;
            p.chunkBodies = 16;
            p.groupBodies = 16;
        }
        if (numa_sized) {
            // Section 4.2: Barnes shrinks to 4K particles (already our
            // trace-study size); shrink further so NUMA runs finish.
            p.numBodies = scale == WorkloadScale::Test ? 256 : 2048;
            p.numCells = p.numBodies / 2;
            p.groupBodies = scale == WorkloadScale::Test ? 8 : 32;
            p.chunkBodies = p.groupBodies;
        }
        return std::make_unique<BarnesWorkload>(p, config);
      }
      case BenchmarkId::Lu: {
        LuParams p;
        p.targetRefsPerProc = refs;
        if (scale == WorkloadScale::Test)
            p.matrixDim = 128;
        if (numa_sized)
            p.matrixDim = scale == WorkloadScale::Test ? 96 : 256;
        return std::make_unique<LuWorkload>(p, config);
      }
      case BenchmarkId::Ocean: {
        OceanParams p;
        p.targetRefsPerProc = refs;
        if (scale == WorkloadScale::Test) {
            p.gridDim = 66;
            p.numGrids = 4;
            // Scale the shared multigrid phase with the sweep volume.
            p.coarseBlocksPerIter = 30;
        }
        if (numa_sized)
            p.gridDim = scale == WorkloadScale::Test ? 66 : 258;
        return std::make_unique<OceanWorkload>(p, config);
      }
      case BenchmarkId::Raytrace: {
        RaytraceParams p;
        p.targetRefsPerProc = refs;
        if (scale == WorkloadScale::Test)
            p.sceneBlocks = 4096;
        if (numa_sized)
            p.sceneBlocks = scale == WorkloadScale::Test ? 4096 : 16384;
        return std::make_unique<RaytraceWorkload>(p, config);
      }
    }
    csr_panic("unhandled BenchmarkId %d", static_cast<int>(id));
}

std::unique_ptr<SyntheticWorkload>
makeWorkload(BenchmarkId id, WorkloadScale scale, bool numa_sized)
{
    WorkloadConfig config;
    config.name = benchmarkName(id);
    config.scale = scale;
    config.numaSized = numa_sized;
    return makeWorkload(config);
}

} // namespace csr
