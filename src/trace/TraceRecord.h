/**
 * @file
 * Memory-reference trace records.
 *
 * A record is one data access by one processor.  Per Section 3.1 of
 * the paper, a sampled-processor trace contains all shared-data
 * accesses of the sampled processor plus all shared-data *writes* of
 * the other processors (so that cache invalidations are accounted
 * for); private data and instruction fetches are excluded.
 */

#ifndef CSR_TRACE_TRACERECORD_H
#define CSR_TRACE_TRACERECORD_H

#include <cstdint>

#include "util/Types.h"

namespace csr
{

/** One memory reference. */
struct TraceRecord
{
    /** Byte address of the access (block-aligned by the generators). */
    Addr addr = 0;
    /** Issuing processor. */
    std::uint16_t proc = 0;
    /** True for stores, false for loads. */
    bool write = false;

    bool
    operator==(const TraceRecord &other) const
    {
        return addr == other.addr && proc == other.proc &&
               write == other.write;
    }
};

/**
 * One memory operation as seen by the execution-driven simulator:
 * the access plus the compute work preceding it.
 */
struct MemAccess
{
    Addr addr = 0;
    bool write = false;
    /** Processor cycles of non-memory work before this access issues. */
    std::uint32_t gapCycles = 0;
};

} // namespace csr

#endif // CSR_TRACE_TRACERECORD_H
