/**
 * @file
 * Blocked dense LU factorization workload generator.
 *
 * SPLASH-2 LU factors an n x n matrix of B x B submatrices that are
 * 2-D-scatter assigned to processors and stored contiguously.  Its
 * trace signature, per the paper: very high locality, strongly
 * phase-structured accesses whose behaviour varies a lot across cache
 * sets, and a modest remote fraction (19.1%).  This is the benchmark
 * on which greedy reservations backfire (negative BCL/DCL savings in
 * Table 2) because remote panel blocks stream through with enormous
 * reuse distances, so the generator keeps LU's defining structure:
 *
 *   - outer iteration k: the owner of the diagonal submatrix factors
 *     it with several read+write sweeps (hot, local);
 *   - perimeter owners read the diagonal submatrix (usually remote)
 *     and sweep their own panel submatrix;
 *   - interior owners read one block-row and one block-column panel
 *     submatrix (usually remote, used once per k) and make several
 *     read+write sweeps over their own (local) submatrix.
 */

#ifndef CSR_TRACE_LUWORKLOAD_H
#define CSR_TRACE_LUWORKLOAD_H

#include "trace/Workload.h"

namespace csr
{

/** Tunables of the LU-like generator. */
struct LuParams
{
    ProcId numProcs = 8;
    std::uint32_t matrixDim = 512;      ///< n (paper: 512)
    std::uint32_t blockDim = 16;        ///< B (submatrix is B x B doubles)
    std::uint32_t procGridRows = 4;     ///< 2-D scatter grid
    std::uint32_t procGridCols = 2;
    std::uint32_t factorSweeps = 3;     ///< r+w passes over the diagonal
    std::uint32_t updateSweeps = 2;     ///< r+w passes over owned blocks
    /** 0 = stop after one factorization; else loop until the cap. */
    std::uint64_t targetRefsPerProc = 0;
    std::uint64_t seed = 2;
};

/** Blocked-LU-like synthetic workload (see file comment). */
class LuWorkload : public SyntheticWorkload
{
  public:
    explicit LuWorkload(const LuParams &params = {});

    /** Params plus the factory's uniform overrides (nonzero
     *  config.numProcs / seed / targetRefsPerProc win).  An
     *  overridden processor count re-factors the 2-D scatter grid. */
    LuWorkload(const LuParams &params, const WorkloadConfig &config)
        : LuWorkload(refactorGrid(applyWorkloadConfig(params, config)))
    {
    }

    std::string name() const override { return "lu"; }
    ProcId numProcs() const override { return params_.numProcs; }
    std::uint64_t memoryBytes() const override;
    std::unique_ptr<ProcAccessStream> procStream(ProcId p) const override;

    const LuParams &params() const { return params_; }

    /** Submatrices per matrix dimension (n / B). */
    std::uint32_t numBlocksDim() const { return nb_; }
    /** Cache blocks per submatrix. */
    std::uint32_t cacheBlocksPerSub() const { return subCacheBlocks_; }
    /** 2-D scatter owner of submatrix (i, j). */
    ProcId ownerOf(std::uint32_t i, std::uint32_t j) const;
    /** Base byte address of submatrix (i, j) (contiguous storage). */
    Addr subBase(std::uint32_t i, std::uint32_t j) const;

  private:
    /** Make the 2-D scatter grid agree with an overridden numProcs:
     *  pick the most square rows x cols factorization. */
    static LuParams
    refactorGrid(LuParams p)
    {
        if (p.procGridRows * p.procGridCols == p.numProcs)
            return p;
        std::uint32_t rows = 1;
        for (std::uint32_t r = 1; r * r <= p.numProcs; ++r)
            if (p.numProcs % r == 0)
                rows = r;
        p.procGridRows = rows;
        p.procGridCols = p.numProcs / rows;
        return p;
    }

    LuParams params_;
    std::uint32_t nb_;
    std::uint32_t subBytes_;
    std::uint32_t subCacheBlocks_;
};

} // namespace csr

#endif // CSR_TRACE_LUWORKLOAD_H
