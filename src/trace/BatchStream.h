/**
 * @file
 * Helper base for ProcAccessStream implementations.
 *
 * Workload programs are most naturally written as loops ("for each
 * owned body: emit its ~24 accesses"), not as resumable state
 * machines.  BatchStream lets a generator produce one program step's
 * worth of accesses at a time into a buffer; next() drains the buffer
 * and asks for a refill when it runs dry.
 */

#ifndef CSR_TRACE_BATCHSTREAM_H
#define CSR_TRACE_BATCHSTREAM_H

#include <cstdint>
#include <vector>

#include "trace/Workload.h"

namespace csr
{

/**
 * Buffered access stream.  Derived classes implement refill(), which
 * either emit()s at least one access or finish()es the stream.  A
 * per-stream reference budget (capRefs) truncates the program when the
 * workload is configured with a target trace length.
 */
class BatchStream : public ProcAccessStream
{
  public:
    /** @param cap_refs maximum accesses this stream will produce;
     *                  0 means unlimited. */
    explicit BatchStream(std::uint64_t cap_refs = 0) : capRefs_(cap_refs) {}

    bool
    next(MemAccess &out) override
    {
        while (cursor_ >= buffer_.size()) {
            if (finished_ || (capRefs_ && produced_ >= capRefs_))
                return false;
            buffer_.clear();
            cursor_ = 0;
            refill();
            if (buffer_.empty() && finished_)
                return false;
        }
        if (capRefs_ && produced_ >= capRefs_)
            return false;
        out = buffer_[cursor_++];
        ++produced_;
        return true;
    }

    /** Total accesses handed out so far. */
    std::uint64_t produced() const { return produced_; }

  protected:
    /** Generate the next batch of accesses (or call finish()). */
    virtual void refill() = 0;

    /** Queue one access. */
    void
    emit(Addr addr, bool write, std::uint32_t gap_cycles = 2)
    {
        buffer_.push_back({addr, write, gap_cycles});
    }

    /** Mark the program as complete; next() returns false once the
     *  buffer drains. */
    void finish() { finished_ = true; }

    bool finished() const { return finished_; }

  private:
    std::vector<MemAccess> buffer_;
    std::size_t cursor_ = 0;
    std::uint64_t produced_ = 0;
    std::uint64_t capRefs_;
    bool finished_ = false;
};

} // namespace csr

#endif // CSR_TRACE_BATCHSTREAM_H
