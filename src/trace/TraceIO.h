/**
 * @file
 * Trace file input/output.
 *
 * Traces can be persisted so that expensive workload generation is
 * paid once and replayed many times, and so that externally captured
 * traces can be fed to the simulators.  Two formats:
 *
 *  - binary ("CSRT"): fixed 12-byte little-endian records, fast;
 *  - text: one "R|W <proc> <hex addr>" line per record, diffable.
 */

#ifndef CSR_TRACE_TRACEIO_H
#define CSR_TRACE_TRACEIO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/TraceRecord.h"

namespace csr
{

/** Write records in binary form.  Returns bytes written. */
std::uint64_t writeTraceBinary(std::ostream &os,
                               const std::vector<TraceRecord> &records);

/** Read a binary trace; fatal on a malformed header or truncation. */
std::vector<TraceRecord> readTraceBinary(std::istream &is);

/** Write records as text, one per line. */
void writeTraceText(std::ostream &os,
                    const std::vector<TraceRecord> &records);

/** Read a text trace; fatal on malformed lines. */
std::vector<TraceRecord> readTraceText(std::istream &is);

/** Convenience: write binary to a path (fatal on I/O failure). */
void saveTrace(const std::string &path,
               const std::vector<TraceRecord> &records);

/** Convenience: read binary from a path (fatal on I/O failure). */
std::vector<TraceRecord> loadTrace(const std::string &path);

} // namespace csr

#endif // CSR_TRACE_TRACEIO_H
