/**
 * @file
 * Trace file input/output.
 *
 * Traces can be persisted so that expensive workload generation is
 * paid once and replayed many times, and so that externally captured
 * traces can be fed to the simulators.  Two formats:
 *
 *  - binary ("CSRT"): fixed 12-byte little-endian records, fast;
 *  - text: one "R|W <proc> <hex addr>" line per record, diffable.
 */

#ifndef CSR_TRACE_TRACEIO_H
#define CSR_TRACE_TRACEIO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/TraceRecord.h"

namespace csr
{

/** Write records in binary form.  Returns bytes written. */
std::uint64_t writeTraceBinary(std::ostream &os,
                               const std::vector<TraceRecord> &records);

/** Read a binary trace.  Bounds-checked end to end: a malformed
 *  header, impossible record count or truncated record raises
 *  TraceFormatError carrying the byte offset of the failure -- never
 *  UB, whatever the input. */
std::vector<TraceRecord> readTraceBinary(std::istream &is);

/** Write records as text, one per line. */
void writeTraceText(std::ostream &os,
                    const std::vector<TraceRecord> &records);

/** Read a text trace; TraceFormatError on malformed lines (the
 *  message names the line, the error carries the byte offset). */
std::vector<TraceRecord> readTraceText(std::istream &is);

/** Convenience: write binary to a path; ConfigError when the path
 *  cannot be opened or written. */
void saveTrace(const std::string &path,
               const std::vector<TraceRecord> &records);

/** Convenience: read binary from a path; ConfigError when the path
 *  cannot be opened, TraceFormatError when the content is bad. */
std::vector<TraceRecord> loadTrace(const std::string &path);

} // namespace csr

#endif // CSR_TRACE_TRACEIO_H
