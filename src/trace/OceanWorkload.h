/**
 * @file
 * Ocean (regular grid PDE solver) workload generator.
 *
 * SPLASH-2 Ocean simulates eddy currents with red-black Gauss-Seidel
 * sweeps and a multigrid solver over many ~G x G grids, partitioned
 * into per-processor bands.  Its trace signature, per the paper:
 * streaming sweeps over a footprint far larger than the cache (miss
 * rate inversely proportional to cache size) and a small remote
 * fraction (7.4%) coming from band-boundary rows and the shared
 * multigrid/reduction data.  The generator models:
 *
 *   - A grids of G x G doubles, band-partitioned by rows;
 *   - per-iteration 5-point stencil sweeps over (src, dst) grid
 *     pairs: read centre/north/south, write dst, block by block
 *     (west/east live in the same cache block as the centre);
 *   - boundary rows read one row of the neighbouring processor's
 *     band (the remote traffic);
 *   - a per-iteration multigrid/reduction phase reading a shared
 *     coarse grid (first-touch scattered, so mostly remote) and the
 *     other processors' partial sums.
 */

#ifndef CSR_TRACE_OCEANWORKLOAD_H
#define CSR_TRACE_OCEANWORKLOAD_H

#include "trace/Workload.h"

namespace csr
{

/** Tunables of the Ocean-like generator. */
struct OceanParams
{
    ProcId numProcs = 16;
    std::uint32_t gridDim = 258;        ///< G (paper: 258)
    std::uint32_t numGrids = 8;         ///< paper has ~25; scaled
    std::uint32_t sweepPairs = 4;       ///< (src,dst) pairs per iteration
    /** Rows relaxed as one block-tiled strip; the strip is swept
     *  relaxSweeps times before moving on (red-black/SOR relaxation
     *  revisits points), which is what gives Ocean reuse at stack
     *  distances just beyond the L2 associativity. */
    std::uint32_t stripRows = 6;
    std::uint32_t relaxSweeps = 2;
    std::uint32_t coarseBlocksPerIter = 280; ///< shared multigrid reads
    std::uint64_t targetRefsPerProc = 600000;
    std::uint64_t seed = 3;
};

/** Ocean-like synthetic workload (see file comment). */
class OceanWorkload : public SyntheticWorkload
{
  public:
    explicit OceanWorkload(const OceanParams &params = {});

    /** Params plus the factory's uniform overrides (nonzero
     *  config.numProcs / seed / targetRefsPerProc win). */
    OceanWorkload(const OceanParams &params,
                  const WorkloadConfig &config)
        : OceanWorkload(applyWorkloadConfig(params, config))
    {
    }

    std::string name() const override { return "ocean"; }
    ProcId numProcs() const override { return params_.numProcs; }
    std::uint64_t memoryBytes() const override;
    std::unique_ptr<ProcAccessStream> procStream(ProcId p) const override;

    const OceanParams &params() const { return params_; }

    /** Cache blocks per grid row (rows are padded to block multiples). */
    std::uint32_t blocksPerRow() const { return blocksPerRow_; }
    /** Interior rows owned by processor p: [firstRow, firstRow+count). */
    std::uint32_t firstRowOf(ProcId p) const;
    std::uint32_t rowsOf(ProcId p) const;
    /** Byte address of block b of row r of grid g. */
    Addr rowBlockAddr(std::uint32_t g, std::uint32_t r,
                      std::uint32_t b) const;

  private:
    OceanParams params_;
    std::uint32_t blocksPerRow_;
    std::uint32_t interiorRows_;
};

} // namespace csr

#endif // CSR_TRACE_OCEANWORKLOAD_H
