#include "trace/LuWorkload.h"

#include "trace/BatchStream.h"
#include "util/Logging.h"

namespace csr
{

namespace
{

constexpr Addr kMatrixBase = 0x40000000;
constexpr Addr kBlockBytes = 64;

/** One processor's LU program, one submatrix operation per refill. */
class LuStream : public BatchStream
{
  public:
    LuStream(const LuWorkload &workload, ProcId proc)
        : BatchStream(workload.params().targetRefsPerProc), wl_(workload),
          p_(workload.params()), proc_(proc)
    {
    }

  protected:
    void
    refill() override
    {
        const std::uint32_t nb = wl_.numBlocksDim();
        while (true) {
            if (k_ >= nb) {
                if (p_.targetRefsPerProc == 0) {
                    finish();
                    return;
                }
                // Loop the kernel until the reference cap truncates us.
                k_ = 0;
                stage_ = Stage::Diag;
            }
            switch (stage_) {
              case Stage::Diag:
                stage_ = Stage::Row;
                cursor_ = k_ + 1;
                if (wl_.ownerOf(k_, k_) == proc_) {
                    emitFactor();
                    return;
                }
                break;
              case Stage::Row:
                if (cursor_ >= nb) {
                    stage_ = Stage::Col;
                    cursor_ = k_ + 1;
                    break;
                }
                if (wl_.ownerOf(k_, cursor_) == proc_) {
                    emitPerimeter(k_, cursor_);
                    ++cursor_;
                    return;
                }
                ++cursor_;
                break;
              case Stage::Col:
                if (cursor_ >= nb) {
                    stage_ = Stage::Interior;
                    cursor_ = 0;
                    break;
                }
                if (wl_.ownerOf(cursor_, k_) == proc_) {
                    emitPerimeter(cursor_, k_);
                    ++cursor_;
                    return;
                }
                ++cursor_;
                break;
              case Stage::Interior: {
                const std::uint32_t span = nb - (k_ + 1);
                if (span == 0 || cursor_ >= span * span) {
                    ++k_;
                    stage_ = Stage::Diag;
                    break;
                }
                const std::uint32_t i = k_ + 1 + cursor_ / span;
                const std::uint32_t j = k_ + 1 + cursor_ % span;
                ++cursor_;
                if (wl_.ownerOf(i, j) == proc_) {
                    emitInterior(i, j);
                    return;
                }
                break;
              }
            }
        }
    }

  private:
    enum class Stage
    {
        Diag,
        Row,
        Col,
        Interior,
    };

    void
    sweepRead(std::uint32_t i, std::uint32_t j, std::uint32_t gap)
    {
        const Addr base = wl_.subBase(i, j);
        for (std::uint32_t b = 0; b < wl_.cacheBlocksPerSub(); ++b)
            emit(base + static_cast<Addr>(b) * kBlockBytes, false, gap);
    }

    void
    sweepReadWrite(std::uint32_t i, std::uint32_t j, std::uint32_t sweeps,
                   std::uint32_t gap)
    {
        const Addr base = wl_.subBase(i, j);
        for (std::uint32_t s = 0; s < sweeps; ++s) {
            for (std::uint32_t b = 0; b < wl_.cacheBlocksPerSub(); ++b) {
                const Addr addr = base + static_cast<Addr>(b) * kBlockBytes;
                emit(addr, false, gap);
                emit(addr, true, gap);
            }
        }
    }

    /** Factor the diagonal submatrix (local, compute-heavy). */
    void
    emitFactor()
    {
        sweepReadWrite(k_, k_, p_.factorSweeps, 6);
    }

    /** Perimeter update: read the diagonal, sweep the owned panel. */
    void
    emitPerimeter(std::uint32_t i, std::uint32_t j)
    {
        sweepRead(k_, k_, 2);
        sweepReadWrite(i, j, p_.updateSweeps, 4);
    }

    /** Interior update: read the two panels, sweep the owned block. */
    void
    emitInterior(std::uint32_t i, std::uint32_t j)
    {
        sweepRead(i, k_, 2);
        sweepRead(k_, j, 2);
        sweepReadWrite(i, j, p_.updateSweeps, 4);
    }

    const LuWorkload &wl_;
    const LuParams &p_;
    ProcId proc_;
    std::uint32_t k_ = 0;
    Stage stage_ = Stage::Diag;
    std::uint32_t cursor_ = 0;
};

} // namespace

LuWorkload::LuWorkload(const LuParams &params) : params_(params)
{
    csr_assert(params_.matrixDim % params_.blockDim == 0,
               "matrixDim must be a multiple of blockDim");
    csr_assert(params_.procGridRows * params_.procGridCols ==
               params_.numProcs, "proc grid does not match numProcs");
    nb_ = params_.matrixDim / params_.blockDim;
    subBytes_ = params_.blockDim * params_.blockDim * 8; // doubles
    subCacheBlocks_ = subBytes_ / kBlockBytes;
    csr_assert(subCacheBlocks_ > 0, "submatrix smaller than a cache block");
}

std::uint64_t
LuWorkload::memoryBytes() const
{
    return static_cast<std::uint64_t>(nb_) * nb_ * subBytes_;
}

std::unique_ptr<ProcAccessStream>
LuWorkload::procStream(ProcId p) const
{
    csr_assert(p < params_.numProcs, "proc out of range");
    return std::make_unique<LuStream>(*this, p);
}

ProcId
LuWorkload::ownerOf(std::uint32_t i, std::uint32_t j) const
{
    return (i % params_.procGridRows) * params_.procGridCols +
           (j % params_.procGridCols);
}

Addr
LuWorkload::subBase(std::uint32_t i, std::uint32_t j) const
{
    return kMatrixBase +
           (static_cast<Addr>(i) * nb_ + j) * subBytes_;
}

} // namespace csr
