#include "trace/TraceIO.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/Logging.h"

namespace csr
{

namespace
{

constexpr char kMagic[4] = {'C', 'S', 'R', 'T'};
constexpr std::uint32_t kVersion = 1;

void
put64(std::ostream &os, std::uint64_t v)
{
    std::array<unsigned char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[static_cast<std::size_t>(i)] =
            static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(buf.data()), 8);
}

std::uint64_t
get64(std::istream &is)
{
    std::array<unsigned char, 8> buf;
    is.read(reinterpret_cast<char *>(buf.data()), 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[static_cast<std::size_t>(i)])
             << (8 * i);
    return v;
}

} // namespace

std::uint64_t
writeTraceBinary(std::ostream &os, const std::vector<TraceRecord> &records)
{
    os.write(kMagic, 4);
    put64(os, kVersion);
    put64(os, records.size());
    for (const auto &rec : records) {
        put64(os, rec.addr);
        const std::uint32_t meta =
            static_cast<std::uint32_t>(rec.proc) |
            (rec.write ? 0x10000u : 0u);
        std::array<unsigned char, 4> buf;
        for (int i = 0; i < 4; ++i)
            buf[static_cast<std::size_t>(i)] =
                static_cast<unsigned char>(meta >> (8 * i));
        os.write(reinterpret_cast<const char *>(buf.data()), 4);
    }
    return 4 + 16 + records.size() * 12;
}

std::vector<TraceRecord>
readTraceBinary(std::istream &is)
{
    char magic[4];
    is.read(magic, 4);
    if (!is || std::memcmp(magic, kMagic, 4) != 0)
        csr_fatal("not a CSRT binary trace");
    const std::uint64_t version = get64(is);
    if (version != kVersion)
        csr_fatal("unsupported trace version %llu",
                  static_cast<unsigned long long>(version));
    const std::uint64_t count = get64(is);
    std::vector<TraceRecord> records;
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord rec;
        rec.addr = get64(is);
        std::array<unsigned char, 4> buf;
        is.read(reinterpret_cast<char *>(buf.data()), 4);
        if (!is)
            csr_fatal("truncated trace at record %llu",
                      static_cast<unsigned long long>(i));
        std::uint32_t meta = 0;
        for (int b = 0; b < 4; ++b)
            meta |= static_cast<std::uint32_t>(
                        buf[static_cast<std::size_t>(b)])
                    << (8 * b);
        rec.proc = static_cast<std::uint16_t>(meta & 0xFFFF);
        rec.write = (meta & 0x10000u) != 0;
        records.push_back(rec);
    }
    return records;
}

void
writeTraceText(std::ostream &os, const std::vector<TraceRecord> &records)
{
    for (const auto &rec : records) {
        os << (rec.write ? 'W' : 'R') << ' ' << rec.proc << ' ' << std::hex
           << rec.addr << std::dec << '\n';
    }
}

std::vector<TraceRecord>
readTraceText(std::istream &is)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char type = 0;
        std::uint32_t proc = 0;
        Addr addr = 0;
        ls >> type >> proc >> std::hex >> addr;
        if (!ls || (type != 'R' && type != 'W'))
            csr_fatal("malformed trace line %llu: '%s'",
                      static_cast<unsigned long long>(lineno), line.c_str());
        records.push_back({addr, static_cast<std::uint16_t>(proc),
                           type == 'W'});
    }
    return records;
}

void
saveTrace(const std::string &path, const std::vector<TraceRecord> &records)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        csr_fatal("cannot open '%s' for writing", path.c_str());
    writeTraceBinary(os, records);
    if (!os)
        csr_fatal("write failure on '%s'", path.c_str());
}

std::vector<TraceRecord>
loadTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        csr_fatal("cannot open '%s' for reading", path.c_str());
    return readTraceBinary(is);
}

} // namespace csr
