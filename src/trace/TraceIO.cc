#include "trace/TraceIO.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "robust/Errors.h"
#include "robust/FaultInjector.h"
#include "util/Logging.h"

namespace csr
{

namespace
{

constexpr char kMagic[4] = {'C', 'S', 'R', 'T'};
constexpr std::uint32_t kVersion = 1;

/** Header: magic + version + count; each record: addr + meta. */
constexpr std::uint64_t kHeaderBytes = 4 + 8 + 8;
constexpr std::uint64_t kRecordBytes = 8 + 4;

/** Cap on the up-front reservation for the declared record count: a
 *  corrupt header must not be able to demand an absurd allocation.
 *  Larger (honest) traces grow past this normally. */
constexpr std::uint64_t kMaxReserveRecords = 1u << 20;

void
put64(std::ostream &os, std::uint64_t v)
{
    std::array<unsigned char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[static_cast<std::size_t>(i)] =
            static_cast<unsigned char>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(buf.data()), 8);
}

/** Read 8 little-endian bytes at @p offset; TraceFormatError naming
 *  the offset when the stream cannot deliver them. */
std::uint64_t
get64(std::istream &is, std::uint64_t offset, const char *what)
{
    std::array<unsigned char, 8> buf;
    is.read(reinterpret_cast<char *>(buf.data()), 8);
    if (!is || is.gcount() != 8)
        throw TraceFormatError(std::string("truncated trace: ") + what,
                               offset);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[static_cast<std::size_t>(i)])
             << (8 * i);
    return v;
}

} // namespace

std::uint64_t
writeTraceBinary(std::ostream &os, const std::vector<TraceRecord> &records)
{
    os.write(kMagic, 4);
    put64(os, kVersion);
    put64(os, records.size());
    for (const auto &rec : records) {
        put64(os, rec.addr);
        const std::uint32_t meta =
            static_cast<std::uint32_t>(rec.proc) |
            (rec.write ? 0x10000u : 0u);
        std::array<unsigned char, 4> buf;
        for (int i = 0; i < 4; ++i)
            buf[static_cast<std::size_t>(i)] =
                static_cast<unsigned char>(meta >> (8 * i));
        os.write(reinterpret_cast<const char *>(buf.data()), 4);
    }
    return kHeaderBytes + records.size() * kRecordBytes;
}

std::vector<TraceRecord>
readTraceBinary(std::istream &is)
{
    char magic[4];
    is.read(magic, 4);
    if (!is || is.gcount() != 4 ||
        std::memcmp(magic, kMagic, 4) != 0)
        throw TraceFormatError("not a CSRT binary trace", 0);
    const std::uint64_t version = get64(is, 4, "version field");
    if (version != kVersion)
        throw TraceFormatError(
            "unsupported trace version " + std::to_string(version), 4);
    const std::uint64_t count = get64(is, 12, "record count");

    std::vector<TraceRecord> records;
    // Trusting a corrupt count here would hand an attacker-sized
    // allocation to reserve(); cap it and let honest traces grow.
    records.reserve(static_cast<std::size_t>(
        count < kMaxReserveRecords ? count : kMaxReserveRecords));
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t offset = kHeaderBytes + i * kRecordBytes;
        TraceRecord rec;
        rec.addr = get64(is, offset,
                         "address of a declared record");
        std::array<unsigned char, 4> buf;
        is.read(reinterpret_cast<char *>(buf.data()), 4);
        if (!is || is.gcount() != 4)
            throw TraceFormatError(
                "truncated trace at record " + std::to_string(i) +
                    " of " + std::to_string(count),
                offset + 8);
        std::uint32_t meta = 0;
        for (int b = 0; b < 4; ++b)
            meta |= static_cast<std::uint32_t>(
                        buf[static_cast<std::size_t>(b)])
                    << (8 * b);
        if (meta & ~0x1FFFFu)
            throw TraceFormatError(
                "record " + std::to_string(i) +
                    " has reserved meta bits set",
                offset + 8);
        rec.proc = static_cast<std::uint16_t>(meta & 0xFFFF);
        rec.write = (meta & 0x10000u) != 0;
        records.push_back(rec);
    }
    return records;
}

void
writeTraceText(std::ostream &os, const std::vector<TraceRecord> &records)
{
    for (const auto &rec : records) {
        os << (rec.write ? 'W' : 'R') << ' ' << rec.proc << ' ' << std::hex
           << rec.addr << std::dec << '\n';
    }
}

std::vector<TraceRecord>
readTraceText(std::istream &is)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::uint64_t lineno = 0;
    std::uint64_t offset = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const std::uint64_t line_offset = offset;
        offset += line.size() + 1;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char type = 0;
        std::uint32_t proc = 0;
        Addr addr = 0;
        ls >> type >> proc >> std::hex >> addr;
        if (!ls || (type != 'R' && type != 'W'))
            throw TraceFormatError(
                "malformed trace line " + std::to_string(lineno) +
                    ": '" + line + "'",
                line_offset);
        if (proc > 0xFFFF)
            throw TraceFormatError(
                "trace line " + std::to_string(lineno) +
                    ": processor id " + std::to_string(proc) +
                    " out of range",
                line_offset);
        records.push_back({addr, static_cast<std::uint16_t>(proc),
                           type == 'W'});
    }
    return records;
}

void
saveTrace(const std::string &path, const std::vector<TraceRecord> &records)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw ConfigError("cannot open '" + path + "' for writing");
    writeTraceBinary(os, records);
    if (!os)
        throw ConfigError("write failure on '" + path + "'");
}

std::vector<TraceRecord>
loadTrace(const std::string &path)
{
    CSR_FAULT_POINT(FaultSite::TraceLoad, "loadTrace(" + path + ")");
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw ConfigError("cannot open '" + path + "' for reading");
    return readTraceBinary(is);
}

} // namespace csr
