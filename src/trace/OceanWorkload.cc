#include "trace/OceanWorkload.h"

#include "trace/BatchStream.h"
#include "util/Logging.h"
#include "util/MathUtil.h"
#include "util/Random.h"

namespace csr
{

namespace
{

constexpr Addr kGridBase = 0x80000000;
constexpr Addr kGridStride = 0x01000000; // 16 MB between grids
constexpr Addr kCoarseBase = 0xC0000000;
constexpr Addr kSumBase = 0xD0000000;
constexpr Addr kBlockBytes = 64;

/** One processor's Ocean program; one row sweep (or the global phase)
 *  per refill. */
class OceanStream : public BatchStream
{
  public:
    OceanStream(const OceanWorkload &workload, ProcId proc)
        : BatchStream(workload.params().targetRefsPerProc), wl_(workload),
          p_(workload.params()), proc_(proc),
          rng_(hashMix64(p_.seed * 0x0CEA + proc + 1))
    {
    }

  protected:
    void
    refill() override
    {
        const std::uint32_t rows = wl_.rowsOf(proc_);
        if (stripStart_ < rows) {
            emitStripSweep(rows);
            if (++sweepCursor_ >= p_.relaxSweeps) {
                sweepCursor_ = 0;
                stripStart_ += p_.stripRows;
            }
            return;
        }
        // Band relaxed for this (src, dst) pair; move to the next
        // pair or the iteration-final global phase.
        stripStart_ = 0;
        sweepCursor_ = 0;
        ++pairCursor_;
        if (pairCursor_ < p_.sweepPairs)
            return refill();
        pairCursor_ = 0;
        ++iteration_;
        emitGlobalPhase();
    }

  private:
    /** One relaxation pass over the current strip: a 5-point stencil
     *  over each strip row of the src grid into the dst grid, block
     *  by block (west/east share the centre's cache block). */
    void
    emitStripSweep(std::uint32_t band_rows)
    {
        const std::uint32_t src = (2 * pairCursor_) % p_.numGrids;
        const std::uint32_t dst = (2 * pairCursor_ + 1) % p_.numGrids;
        const std::uint32_t first = wl_.firstRowOf(proc_);
        const std::uint32_t end =
            std::min(stripStart_ + p_.stripRows, band_rows);
        for (std::uint32_t r = stripStart_; r < end; ++r) {
            const std::uint32_t row = first + r;
            for (std::uint32_t b = 0; b < wl_.blocksPerRow(); ++b) {
                // The stencil arithmetic for the 8 points of a cache
                // block costs a few tens of cycles; it is what keeps
                // Ocean latency-sensitive rather than purely
                // bandwidth-bound.
                emit(wl_.rowBlockAddr(src, row, b), false, 2);
                emit(wl_.rowBlockAddr(src, row - 1, b), false, 2);
                emit(wl_.rowBlockAddr(src, row + 1, b), false, 2);
                emit(wl_.rowBlockAddr(dst, row, b), true, 14);
            }
        }
    }

    /** Multigrid restriction + global reduction: shared coarse grid
     *  reads (scattered first touch, mostly remote) and the other
     *  processors' partial sums. */
    void
    emitGlobalPhase()
    {
        for (std::uint32_t i = 0; i < p_.coarseBlocksPerIter; ++i) {
            const Addr block =
                rng_.nextBelow(4096); // 256 KB shared coarse data
            emit(kCoarseBase + block * kBlockBytes, false, 1);
        }
        // Read every processor's partial sum, update our own.
        for (ProcId q = 0; q < p_.numProcs; ++q)
            emit(kSumBase + static_cast<Addr>(q) * kBlockBytes, false, 1);
        emit(kSumBase + static_cast<Addr>(proc_) * kBlockBytes, true, 4);
    }

    const OceanWorkload &wl_;
    const OceanParams &p_;
    ProcId proc_;
    Rng rng_;
    std::uint32_t stripStart_ = 0;
    std::uint32_t sweepCursor_ = 0;
    std::uint32_t pairCursor_ = 0;
    std::uint32_t iteration_ = 0;
};

} // namespace

OceanWorkload::OceanWorkload(const OceanParams &params) : params_(params)
{
    csr_assert(params_.numProcs > 0 && params_.gridDim > 2,
               "empty Ocean configuration");
    // Row of G doubles, padded up to whole cache blocks.
    blocksPerRow_ = static_cast<std::uint32_t>(
        divCeil(static_cast<std::uint64_t>(params_.gridDim) * 8,
                kBlockBytes));
    interiorRows_ = params_.gridDim - 2; // rows 0 and G-1 are halo
    csr_assert(interiorRows_ >= params_.numProcs,
               "fewer interior rows than processors");
}

std::uint64_t
OceanWorkload::memoryBytes() const
{
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(blocksPerRow_) * kBlockBytes;
    return static_cast<std::uint64_t>(params_.numGrids) * params_.gridDim *
               row_bytes +
           256 * 1024 /* coarse */ + params_.numProcs * kBlockBytes;
}

std::unique_ptr<ProcAccessStream>
OceanWorkload::procStream(ProcId p) const
{
    csr_assert(p < params_.numProcs, "proc out of range");
    return std::make_unique<OceanStream>(*this, p);
}

std::uint32_t
OceanWorkload::firstRowOf(ProcId p) const
{
    // Split interior rows evenly; remainder rows go to the low procs.
    const std::uint32_t base = interiorRows_ / params_.numProcs;
    const std::uint32_t extra = interiorRows_ % params_.numProcs;
    return 1 + p * base + std::min(p, extra);
}

std::uint32_t
OceanWorkload::rowsOf(ProcId p) const
{
    const std::uint32_t base = interiorRows_ / params_.numProcs;
    const std::uint32_t extra = interiorRows_ % params_.numProcs;
    return base + (p < extra ? 1 : 0);
}

Addr
OceanWorkload::rowBlockAddr(std::uint32_t g, std::uint32_t r,
                            std::uint32_t b) const
{
    return kGridBase + static_cast<Addr>(g) * kGridStride +
           (static_cast<Addr>(r) * blocksPerRow_ + b) * kBlockBytes;
}

} // namespace csr
