/**
 * @file
 * Small integer-math helpers used by cache geometry code.
 */

#ifndef CSR_UTIL_MATHUTIL_H
#define CSR_UTIL_MATHUTIL_H

#include <cstdint>

#include "util/Logging.h"

namespace csr
{

/** True iff x is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); x must be non-zero. */
constexpr int
floorLog2(std::uint64_t x)
{
    int r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** ceil(log2(x)); x must be non-zero.  ceilLog2(1) == 0. */
constexpr int
ceilLog2(std::uint64_t x)
{
    return floorLog2(x) + (isPow2(x) ? 0 : 1);
}

/** Round x down to a multiple of align (align must be a power of 2). */
constexpr std::uint64_t
alignDown(std::uint64_t x, std::uint64_t align)
{
    return x & ~(align - 1);
}

/** Round x up to a multiple of align (align must be a power of 2). */
constexpr std::uint64_t
alignUp(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace csr

#endif // CSR_UTIL_MATHUTIL_H
