/**
 * @file
 * Shared command-line flag parsing.
 *
 * csrsim and the bench binaries used to each carry their own ad-hoc
 * "--key value" loop with slightly different spellings and error
 * messages.  CliArgs is the one parser: every binary accepts the same
 * flag grammar (--key value or --key=value pairs, --help/-h),
 * produces the same diagnostics, and reads the common flags (--json,
 * --jobs, --seed, --trace, --metrics, --scale) through the same
 * accessors -- with the benches' historical environment variables
 * (CSR_JOBS, CSR_SCALE) as fallback where the callers opt in.
 *
 * Binaries that wrap a second flag parser (bench_micro_policies hands
 * google-benchmark's --benchmark_* flags through) use the lenient()
 * factory instead of pre-splitting argv: flags the binary declares
 * are consumed, and every other token -- bare positionals and foreign
 * --x[=y] flags alike -- is preserved verbatim, in order, in
 * positionals() for delegation.
 */

#ifndef CSR_UTIL_CLIARGS_H
#define CSR_UTIL_CLIARGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace csr
{

class CliArgs
{
  public:
    /**
     * Parse "--key value" (or "--key=value") pairs from argv[first..).
     * "--help"/"-h" set helpRequested() instead of consuming a value.
     * Keys listed in @p valueless are boolean switches: they consume
     * no value and read back as "1" (so has() and getUInt() both
     * work).  Anything that is not a --flag, and any non-valueless
     * --flag missing its value, raises ConfigError with a uniform
     * diagnostic naming the program.
     */
    CliArgs(int argc, char **argv, int first = 1,
            const std::vector<std::string> &valueless = {});

    /**
     * Lenient grammar for binaries that delegate unrecognized
     * arguments to another parser: positionals and flags may
     * interleave.  A "--key" in @p valued (or a common flag, see
     * below) consumes the next token as its value, a "--key=value"
     * spelling of those keys is split, a "--key" in @p valueless
     * reads back as "1", and every other token -- bare words and
     * foreign "--x[=y]" flags alike -- is preserved verbatim, in
     * order, in positionals().  Nothing is rejected except a declared
     * valued flag missing its value.
     */
    static CliArgs lenient(int argc, char **argv,
                           const std::vector<std::string> &valued,
                           const std::vector<std::string> &valueless = {});

    /** Tokens not consumed as flags, in argv order (lenient mode
     *  only; strict parses reject them instead). */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) != 0;
    }

    std::string get(const std::string &key,
                    const std::string &fallback) const;

    /** Number; ConfigError when the value does not parse. */
    double getDouble(const std::string &key, double fallback) const;

    /** Unsigned integer (base auto-detected); ConfigError when the
     *  value does not parse. */
    std::uint64_t getUInt(const std::string &key,
                          std::uint64_t fallback) const;

    bool helpRequested() const { return help_; }

    // --- the common flags, one spelling for every binary ------------------

    /** --jobs N, validated to [0,1024] (0 = one per hardware thread);
     *  falls back to $CSR_JOBS when @p env_fallback and the flag is
     *  absent. */
    unsigned jobs(bool env_fallback = false) const;

    /** --seed N. */
    std::uint64_t seed(std::uint64_t fallback) const;

    /** --json FILE ("" = unset). */
    std::string jsonPath() const { return get("json", ""); }

    /** --trace FILE: Chrome trace-event output ("" = unset). */
    std::string tracePath() const { return get("trace", ""); }

    /** --metrics FILE: unified metrics JSON ("" = unset). */
    std::string metricsPath() const { return get("metrics", ""); }

    /**
     * ConfigError unless every parsed key appears in @p known (the
     * common flags above are always accepted); the diagnostic lists
     * the valid keys.  Call after construction for strict binaries.
     */
    void requireKnown(const std::vector<std::string> &known) const;

  private:
    CliArgs() = default;

    void parse(int argc, char **argv, int first,
               const std::vector<std::string> &valueless,
               const std::vector<std::string> *valued);

    std::string program_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positionals_;
    bool help_ = false;
};

} // namespace csr

#endif // CSR_UTIL_CLIARGS_H
