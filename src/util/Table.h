/**
 * @file
 * Plain-text table formatter.
 *
 * All bench binaries print their reproduction of a paper table or
 * figure through this formatter so the output is uniform: a title,
 * aligned columns, and an optional CSV dump for plotting.
 */

#ifndef CSR_UTIL_TABLE_H
#define CSR_UTIL_TABLE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace csr
{

/**
 * Column-aligned text table.  Cells are strings; numeric helpers
 * format with fixed precision to match the paper's presentation
 * (two decimals for percentages).
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = {});

    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 2);

    /** Format an integer with thousands separators. */
    static std::string count(std::uint64_t v);

    /** Render aligned text (title, header, rule, rows). */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, no separators). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_; // row indices preceded by a rule
};

} // namespace csr

#endif // CSR_UTIL_TABLE_H
