#include "util/Random.h"

#include <cmath>

#include "util/Logging.h"

namespace csr
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // All-zero state is the one invalid state for xoshiro; splitmix64
    // cannot produce four zero words from any seed, but keep the guard
    // explicit for future refactors.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    csr_assert(bound > 0, "nextBelow(0)");
    // Rejection-free Lemire-style multiply-shift is overkill here; the
    // simple modulo bias is < 2^-40 for the bounds we use (< 2^24).
    return next() % bound;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    csr_assert(lo <= hi, "nextRange(%lld, %lld)",
               static_cast<long long>(lo), static_cast<long long>(hi));
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    csr_assert(p > 0.0 && p <= 1.0, "geometric p out of range");
    if (p >= 1.0)
        return 0;
    const double u = nextDouble();
    return static_cast<std::uint64_t>(
        std::floor(std::log1p(-u) / std::log1p(-p)));
}

Rng
Rng::fork(std::uint64_t stream_id)
{
    return Rng(next() ^ hashMix64(stream_id ^ 0xA5A5A5A55A5A5A5Aull));
}

std::uint64_t
hashMix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

} // namespace csr
