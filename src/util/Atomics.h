/**
 * @file
 * Relaxed-atomic access helpers for data shared between lock-holding
 * writers and optimistic (seqlock-validated) readers.
 *
 * The serving layer's lock-free hit path reads tag/valid/value words
 * that a concurrent writer (holding the shard mutex) may be mutating;
 * the read is made safe by seqlock validation, not by mutual
 * exclusion.  For ThreadSanitizer -- and for the C++ memory model --
 * such reads and writes must still be *atomic* operations, so both
 * sides go through std::atomic_ref with relaxed ordering (a plain MOV
 * on x86; the ordering comes from the seqlock's acquire/release
 * protocol, see serve/Seqlock.h).
 *
 * CSR_TSAN is defined when the build is instrumented with TSan;
 * concurrency code uses it to replace benign-but-racy fast paths
 * (e.g. SIMD loads of mutating tag lanes, which TSan would flag as a
 * range access) with per-word atomic equivalents.
 */

#ifndef CSR_UTIL_ATOMICS_H
#define CSR_UTIL_ATOMICS_H

#include <atomic>
#include <cstdint>

#if defined(__SANITIZE_THREAD__)
#define CSR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CSR_TSAN 1
#endif
#endif

namespace csr
{

/** Relaxed atomic load of a word a lock-holder may be writing. */
template <typename T>
inline T
loadRelaxed(const T &word)
{
    return std::atomic_ref<const T>(word).load(
        std::memory_order_relaxed);
}

/** Relaxed atomic store pairing with loadRelaxed() readers. */
template <typename T>
inline void
storeRelaxed(T &word, T value)
{
    std::atomic_ref<T>(word).store(value, std::memory_order_relaxed);
}

} // namespace csr

#endif // CSR_UTIL_ATOMICS_H
