#include "util/CliArgs.h"

#include <algorithm>
#include <cstdlib>

#include "robust/Errors.h"

namespace csr
{

namespace
{

/** The flags every binary accepts (one spelling, see header). */
const std::vector<std::string> &
commonFlags()
{
    static const std::vector<std::string> common = {
        "json", "jobs", "seed", "trace", "metrics",
    };
    return common;
}

bool
contains(const std::vector<std::string> &list, const std::string &key)
{
    return std::find(list.begin(), list.end(), key) != list.end();
}

} // namespace

CliArgs::CliArgs(int argc, char **argv, int first,
                 const std::vector<std::string> &valueless)
{
    parse(argc, argv, first, valueless, /*valued=*/nullptr);
}

CliArgs
CliArgs::lenient(int argc, char **argv,
                 const std::vector<std::string> &valued,
                 const std::vector<std::string> &valueless)
{
    CliArgs args;
    args.parse(argc, argv, /*first=*/1, valueless, &valued);
    return args;
}

void
CliArgs::parse(int argc, char **argv, int first,
               const std::vector<std::string> &valueless,
               const std::vector<std::string> *valued)
{
    program_ = argc > 0 ? argv[0] : "csr";
    // Keep just the binary name for diagnostics.
    const std::size_t slash = program_.find_last_of('/');
    if (slash != std::string::npos)
        program_ = program_.substr(slash + 1);

    const bool lenient = valued != nullptr;
    for (int i = first; i < argc; ++i) {
        const std::string token = argv[i];
        if (token == "--help" || token == "-h") {
            help_ = true;
            continue;
        }
        if (token.rfind("--", 0) != 0) {
            if (lenient) {
                positionals_.push_back(token);
                continue;
            }
            throw ConfigError(program_ + ": unexpected argument '" +
                              token + "' (flags are --key value)");
        }
        std::string key = token.substr(2);
        std::string inline_value;
        const std::size_t eq = key.find('=');
        const bool has_inline = eq != std::string::npos;
        if (has_inline) {
            inline_value = key.substr(eq + 1);
            key = key.substr(0, eq);
        }
        // In lenient mode only declared keys are consumed; everything
        // else is a foreign flag kept verbatim for delegation.
        if (lenient && !contains(*valued, key) &&
            !contains(valueless, key) &&
            !contains(commonFlags(), key)) {
            positionals_.push_back(token);
            continue;
        }
        if (has_inline) {
            values_[key] = inline_value;
            continue;
        }
        if (contains(valueless, key)) {
            values_[key] = "1";
            continue;
        }
        if (i + 1 >= argc)
            throw ConfigError(program_ + ": missing value for --" + key);
        values_[key] = argv[++i];
    }
}

std::string
CliArgs::get(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double
CliArgs::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        throw ConfigError(program_ + ": --" + key + " '" + it->second +
                          "' is not a number");
    return parsed;
}

std::uint64_t
CliArgs::getUInt(const std::string &key, std::uint64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const std::uint64_t parsed =
        std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        throw ConfigError(program_ + ": --" + key + " '" + it->second +
                          "' is not an unsigned integer");
    return parsed;
}

unsigned
CliArgs::jobs(bool env_fallback) const
{
    std::string value = get("jobs", "");
    if (value.empty() && env_fallback) {
        const char *env = std::getenv("CSR_JOBS");
        if (env)
            value = env;
    }
    if (value.empty())
        return 0;
    char *end = nullptr;
    const long jobs = std::strtol(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0' || jobs < 0 || jobs > 1024)
        throw ConfigError(program_ + ": --jobs '" + value +
                          "' must be an integer in [0,1024] "
                          "(0 = one per hardware thread)");
    return static_cast<unsigned>(jobs);
}

std::uint64_t
CliArgs::seed(std::uint64_t fallback) const
{
    return getUInt("seed", fallback);
}

void
CliArgs::requireKnown(const std::vector<std::string> &known) const
{
    for (const auto &[key, value] : values_) {
        (void)value;
        if (contains(known, key) || contains(commonFlags(), key))
            continue;
        std::string valid;
        for (const std::string &k : known)
            valid += (valid.empty() ? "--" : " --") + k;
        for (const std::string &k : commonFlags())
            valid += (valid.empty() ? "--" : " --") + k;
        throw ConfigError(program_ + ": unknown flag --" + key +
                          " (valid: " + valid + ")");
    }
}

} // namespace csr
