#include "util/CliArgs.h"

#include <algorithm>
#include <cstdlib>

#include "robust/Errors.h"

namespace csr
{

CliArgs::CliArgs(int argc, char **argv, int first,
                 const std::vector<std::string> &valueless)
    : program_(argc > 0 ? argv[0] : "csr")
{
    // Keep just the binary name for diagnostics.
    const std::size_t slash = program_.find_last_of('/');
    if (slash != std::string::npos)
        program_ = program_.substr(slash + 1);

    for (int i = first; i < argc; ++i) {
        std::string key = argv[i];
        if (key == "--help" || key == "-h") {
            help_ = true;
            continue;
        }
        if (key.rfind("--", 0) != 0)
            throw ConfigError(program_ + ": unexpected argument '" + key +
                              "' (flags are --key value)");
        key = key.substr(2);
        if (std::find(valueless.begin(), valueless.end(), key) !=
            valueless.end()) {
            values_[key] = "1";
            continue;
        }
        if (i + 1 >= argc)
            throw ConfigError(program_ + ": missing value for --" + key);
        values_[key] = argv[++i];
    }
}

std::string
CliArgs::get(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double
CliArgs::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        throw ConfigError(program_ + ": --" + key + " '" + it->second +
                          "' is not a number");
    return parsed;
}

std::uint64_t
CliArgs::getUInt(const std::string &key, std::uint64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const std::uint64_t parsed =
        std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        throw ConfigError(program_ + ": --" + key + " '" + it->second +
                          "' is not an unsigned integer");
    return parsed;
}

unsigned
CliArgs::jobs(bool env_fallback) const
{
    std::string value = get("jobs", "");
    if (value.empty() && env_fallback) {
        const char *env = std::getenv("CSR_JOBS");
        if (env)
            value = env;
    }
    if (value.empty())
        return 0;
    char *end = nullptr;
    const long jobs = std::strtol(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0' || jobs < 0 || jobs > 1024)
        throw ConfigError(program_ + ": --jobs '" + value +
                          "' must be an integer in [0,1024] "
                          "(0 = one per hardware thread)");
    return static_cast<unsigned>(jobs);
}

std::uint64_t
CliArgs::seed(std::uint64_t fallback) const
{
    return getUInt("seed", fallback);
}

void
CliArgs::requireKnown(const std::vector<std::string> &known) const
{
    static const std::vector<std::string> common = {
        "json", "jobs", "seed", "trace", "metrics",
    };
    for (const auto &[key, value] : values_) {
        (void)value;
        if (std::find(known.begin(), known.end(), key) != known.end())
            continue;
        if (std::find(common.begin(), common.end(), key) !=
            common.end())
            continue;
        std::string valid;
        for (const std::string &k : known)
            valid += (valid.empty() ? "--" : " --") + k;
        for (const std::string &k : common)
            valid += (valid.empty() ? "--" : " --") + k;
        throw ConfigError(program_ + ": unknown flag --" + key +
                          " (valid: " + valid + ")");
    }
}

} // namespace csr
