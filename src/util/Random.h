/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in csr (workload generators, random cost
 * mapping, random replacement) draws from an explicitly seeded Rng so
 * that simulations are reproducible bit-for-bit across runs and
 * platforms.  std::mt19937_64 would also work but its huge state makes
 * cheap value-semantics copies (needed when forking per-processor
 * streams) unattractive; xoshiro256** is small, fast and high quality.
 */

#ifndef CSR_UTIL_RANDOM_H
#define CSR_UTIL_RANDOM_H

#include <cstdint>

namespace csr
{

/**
 * xoshiro256** generator with convenience draws.
 *
 * Copyable; copies continue independent, identical streams, so fork()
 * should be used when independent streams are wanted.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion so that small consecutive seeds
     *  yield well-separated streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability p. */
    bool nextBool(double p);

    /** Geometric draw: number of failures before first success with
     *  per-trial probability p (p in (0,1]). */
    std::uint64_t nextGeometric(double p);

    /**
     * Derive an independent generator.  Mixes the current state with a
     * caller-supplied stream id so that fork(0) and fork(1) from the
     * same parent are decorrelated.
     */
    Rng fork(std::uint64_t stream_id);

  private:
    std::uint64_t s_[4];
};

/**
 * Stateless 64-bit mix (finalizer of splitmix64).  Used to hash block
 * addresses into cost classes: the paper's "random cost mapping based
 * on the block address" requires the same address to always map to the
 * same cost, which a stateful generator cannot provide.
 */
std::uint64_t hashMix64(std::uint64_t x);

} // namespace csr

#endif // CSR_UTIL_RANDOM_H
