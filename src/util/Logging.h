/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * - csr_panic():  an internal invariant was violated (a bug in csr
 *   itself); aborts so that a core dump / debugger can be attached.
 * - csr_fatal():  the *user* asked for something impossible (bad
 *   configuration, inconsistent parameters); exits with status 1.
 * - csr_assert(): panic-on-false with a condition string.
 * - warn()/inform(): status messages that never stop the run.
 */

#ifndef CSR_UTIL_LOGGING_H
#define CSR_UTIL_LOGGING_H

#include <cstdarg>

namespace csr
{

/** Print a formatted message tagged "panic:" and abort(). */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message tagged "fatal:" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "assertion '<cond>' failed: <message>" and abort().  The
 *  condition text is kept out of the format string so that operators
 *  like '%' inside it cannot be misread as conversions. */
[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Print a formatted message tagged "warn:" to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted message tagged "info:" to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace csr

#define csr_panic(...) ::csr::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define csr_fatal(...) ::csr::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert that is active in all build types (simulator correctness is
 *  worth the branch). */
#define csr_assert(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::csr::assertFailImpl(__FILE__, __LINE__, #cond, __VA_ARGS__);   \
        }                                                                    \
    } while (0)

#endif // CSR_UTIL_LOGGING_H
