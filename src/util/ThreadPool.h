/**
 * @file
 * Bounded worker-thread pool.
 *
 * The sweep engine fans hundreds of independent simulation tasks out
 * across a fixed number of workers.  Tasks are type-erased closures;
 * submit() hands back a std::future so results and *exceptions*
 * propagate to the caller (a worker never dies on a throwing task).
 * Destruction drains the queue -- every submitted task runs before
 * the workers join, so no future is ever left with a broken promise.
 */

#ifndef CSR_UTIL_THREADPOOL_H
#define CSR_UTIL_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace csr
{

class ThreadPool
{
  public:
    /** Spawn @p threads workers (0 means one per hardware thread). */
    explicit ThreadPool(unsigned threads = 0)
    {
        if (threads == 0)
            threads = defaultThreads();
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    /** Runs every queued task, then joins the workers. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Hardware concurrency, with a floor of one. */
    static unsigned
    defaultThreads()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }

    /**
     * Queue a nullary callable.  The returned future yields the
     * callable's result, or rethrows whatever it threw.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty())
                    return; // stopping and drained
                job = std::move(queue_.front());
                queue_.pop_front();
            }
            job();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * Run fn(i) for every i in [0, n) on the pool and wait for all of
 * them.  If any invocation throws, the first exception (in index
 * order) is rethrown after every task has finished.
 */
template <typename Fn>
void
parallelFor(ThreadPool &pool, std::size_t n, Fn &&fn)
{
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(pool.submit([&fn, i] { fn(i); }));
    std::exception_ptr first;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace csr

#endif // CSR_UTIL_THREADPOOL_H
