/**
 * @file
 * Fundamental scalar types shared by every csr library.
 *
 * The simulators in this project deal with three axes of quantity:
 * physical addresses, simulated time, and miss cost.  Giving each its
 * own alias keeps interfaces self-describing and makes unit mistakes
 * greppable.
 */

#ifndef CSR_UTIL_TYPES_H
#define CSR_UTIL_TYPES_H

#include <cstdint>
#include <limits>

namespace csr
{

/** Physical (block-granular or byte-granular, per context) address. */
using Addr = std::uint64_t;

/** Simulated time in ticks.  One tick == one picosecond-free abstract
 *  unit; the NUMA simulator uses nanoseconds, the trace simulator does
 *  not use time at all. */
using Tick = std::uint64_t;

/** Processor cycles (clock-dependent). */
using Cycles = std::uint64_t;

/**
 * Miss cost.  Costs are non-negative; the unit is context-dependent
 * (abstract units in the two-static-cost study, nanoseconds of miss
 * latency in the CC-NUMA study).  A double is used so that depreciation
 * arithmetic never truncates; hardware quantization is modelled
 * explicitly where it matters (see cache/HwOverhead.h).
 */
using Cost = double;

/** Identifier of a processor / node in a multiprocessor. */
using ProcId = std::uint32_t;

/** Marker for "no way selected" in victim searches. */
inline constexpr int kInvalidWay = -1;

/** Marker for an unmapped / invalid address. */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Maximum representable tick, used as an "infinite" deadline. */
inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

} // namespace csr

#endif // CSR_UTIL_TYPES_H
