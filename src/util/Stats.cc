#include "util/Stats.h"

#include <algorithm>
#include <cmath>

#include "util/Logging.h"

namespace csr
{

void
RunningStat::add(double x)
{
    ++n_;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    mean_ += delta * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    csr_assert(hi > lo && buckets > 0, "bad histogram shape");
}

void
Histogram::add(double x, std::uint64_t weight)
{
    if (x < lo_) {
        underflow_ += weight;
        return;
    }
    const auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) {
        overflow_ += weight;
        return;
    }
    counts_[idx] += weight;
}

void
Histogram::merge(const Histogram &other)
{
    csr_assert(sameShape(other), "merging histograms of different shape");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = 0;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

std::uint64_t
Histogram::totalCount() const
{
    std::uint64_t total = underflow_ + overflow_;
    for (auto c : counts_)
        total += c;
    return total;
}

double
Histogram::percentile(double frac) const
{
    const std::uint64_t total = totalCount();
    if (total == 0)
        return lo_;
    frac = std::clamp(frac, 0.0, 1.0);
    // Rank of the sample that realizes the percentile, 1-based.  The
    // ceiling (with a floor of one, so p0 means "the smallest
    // sample") keeps the old near-median behaviour while pinning the
    // endpoints: p100 lands on the last populated bucket instead of
    // overshooting, p0 on the first instead of always reporting
    // bucket 0's edge.
    auto target = static_cast<std::uint64_t>(
        std::ceil(frac * static_cast<double>(total)));
    if (target == 0)
        target = 1;
    if (target <= underflow_)
        return lo_;
    std::uint64_t seen = underflow_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target)
            return bucketLo(i) + width_;
    }
    // The remaining mass sits in the overflow bucket.
    return bucketLo(counts_.size() - 1) + width_;
}

void
ParallelTiming::recordTask(double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.add(seconds);
}

void
ParallelTiming::setWallSec(double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    wallSec_ = seconds;
}

std::uint64_t
ParallelTiming::taskCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.count();
}

double
ParallelTiming::taskSecTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.sum();
}

double
ParallelTiming::taskSecMean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.mean();
}

double
ParallelTiming::taskSecMax() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.max();
}

double
ParallelTiming::wallSec() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return wallSec_;
}

double
ParallelTiming::speedup() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return wallSec_ > 0.0 ? tasks_.sum() / wallSec_ : 0.0;
}

double
ParallelTiming::tasksPerSec() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return wallSec_ > 0.0
               ? static_cast<double>(tasks_.count()) / wallSec_
               : 0.0;
}

void
StatGroup::inc(std::string_view name, std::uint64_t by)
{
    auto it = counters_.lower_bound(name);
    if (it != counters_.end() && it->first == name) {
        it->second += by;
        return;
    }
    counters_.emplace_hint(it, std::string(name), by);
}

std::uint64_t &
StatGroup::counter(std::string_view name)
{
    auto it = counters_.lower_bound(name);
    if (it == counters_.end() || it->first != name)
        it = counters_.emplace_hint(it, std::string(name), 0);
    return it->second;
}

std::uint64_t
StatGroup::get(std::string_view name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatGroup::reset()
{
    for (auto &[name, value] : counters_) {
        (void)name;
        value = 0;
    }
}

} // namespace csr
