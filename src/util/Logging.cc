#include "util/Logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace csr
{

namespace
{

/** Serialises whole report lines: sweep worker threads all log
 *  through here, and interleaved half-lines are useless in a
 *  post-mortem. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

void
vreport(const char *tag, const char *file, int line, const char *fmt,
        va_list ap)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    if (file)
        std::fprintf(stderr, " @ %s:%d", file, line);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const char *fmt, ...)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: assertion '%s' failed: ", cond);
        va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
        std::fprintf(stderr, " @ %s:%d\n", file, line);
        std::fflush(stderr);
    }
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", nullptr, 0, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", nullptr, 0, fmt, ap);
    va_end(ap);
}

} // namespace csr
