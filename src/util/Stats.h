/**
 * @file
 * Lightweight statistics accumulators.
 *
 * The simulators accumulate large numbers of per-event samples (miss
 * latencies, reservation outcomes, per-set activity).  These helpers
 * provide numerically stable means/variances, fixed-bucket histograms
 * and a named-counter registry that benches can dump uniformly.
 */

#ifndef CSR_UTIL_STATS_H
#define CSR_UTIL_STATS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace csr
{

/**
 * Running mean / variance via Welford's algorithm plus min/max.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStat &other);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;
    double stddev() const;
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width bucket histogram over [lo, hi) with overflow/underflow
 * buckets.  Used e.g. for miss-latency distributions.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x, std::uint64_t weight = 1);
    void reset();

    /** Merge another histogram of identical shape (parallel
     *  reduction); panics on a shape mismatch. */
    void merge(const Histogram &other);

    /** True when both histograms cover the same buckets. */
    bool sameShape(const Histogram &other) const
    {
        return lo_ == other.lo_ && width_ == other.width_ &&
               counts_.size() == other.counts_.size();
    }

    std::size_t numBuckets() const { return counts_.size(); }
    double bucketWidth() const { return width_; }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    /** Inclusive lower edge of bucket i. */
    double bucketLo(std::size_t i) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalCount() const;
    /** Smallest value v such that at least frac of the mass is <= v
     *  (approximated at bucket granularity).  @p frac is clamped to
     *  [0,1]; an empty histogram reports lo(), p0 the first populated
     *  bucket's upper edge (lo() when the mass starts in the
     *  underflow bucket), and p100 the last populated bucket's upper
     *  edge (the top edge when mass overflows). */
    double percentile(double frac) const;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * A registry of named 64-bit counters.  Components register counters
 * by dotted path ("l2.miss", "l2.reservation.success") and benches dump
 * them all at once; lookup is by map so registration order does not
 * matter.
 */
class StatGroup
{
  public:
    /** Increment (creating at zero if absent).  Heterogeneous lookup:
     *  incrementing an existing counter never materializes a
     *  std::string, so hot simulator paths do not allocate. */
    void inc(std::string_view name, std::uint64_t by = 1);
    /**
     * Stable reference to a named counter, created at zero if
     * absent.  std::map node addresses never move, and reset()
     * zeroes values in place rather than erasing nodes, so the
     * reference stays valid for the group's lifetime -- per-event
     * hot paths (the policies' reservation bookkeeping) resolve the
     * name once at construction and bump through the reference,
     * instead of paying a tree walk per event.
     */
    std::uint64_t &counter(std::string_view name);
    /** Read (zero if absent). */
    std::uint64_t get(std::string_view name) const;
    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t, std::less<>> &all() const
    {
        return counters_;
    }
    /** Zero every counter in place (references from counter() stay
     *  valid; the names survive with value 0). */
    void reset();

  private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/**
 * Monotonic wall-clock stopwatch.  Starts on construction.
 */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    void reset() { start_ = std::chrono::steady_clock::now(); }

    double
    elapsedSec() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Timing summary for a batch of parallel tasks.  Workers record the
 * wall-clock seconds of each task (thread-safe); the coordinator sets
 * the batch's total wall time once the pool has drained.  The
 * speedup() of task-seconds over wall-seconds is how the sweep engine
 * makes its parallelism observable.
 */
class ParallelTiming
{
  public:
    /** Record one finished task (safe to call from any thread). */
    void recordTask(double seconds);

    /** Set the whole batch's wall-clock duration. */
    void setWallSec(double seconds);

    std::uint64_t taskCount() const;
    double taskSecTotal() const;
    double taskSecMean() const;
    double taskSecMax() const;
    double wallSec() const;
    /** Aggregate task time over wall time (1.0 when serial). */
    double speedup() const;
    /** Completed tasks per wall-clock second. */
    double tasksPerSec() const;

  private:
    mutable std::mutex mutex_;
    RunningStat tasks_;
    double wallSec_ = 0.0;
};

} // namespace csr

#endif // CSR_UTIL_STATS_H
