#include "util/Table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace csr
{

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    separators_.push_back(rows_.size());
}

std::string
TextTable::num(double v, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << v;
    return oss.str();
}

std::string
TextTable::count(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int digits = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (digits && digits % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++digits;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : std::string();
            os << (i == 0 ? "| " : " | ");
            // Left-align the first column (labels), right-align data.
            if (i == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[i])) << cell;
        }
        os << " |\n";
    };
    auto emit_rule = [&]() {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            os << (i == 0 ? "|-" : "-|-");
            os << std::string(widths[i], '-');
        }
        os << "-|\n";
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit_row(header_);
        emit_rule();
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
            separators_.end()) {
            emit_rule();
        }
        emit_row(rows_[r]);
    }
}

void
TextTable::printCsv(std::ostream &os) const
{
    // RFC-4180 quoting: grouped numbers like "6,115" must stay one
    // field.
    auto emit_field = [&os](const std::string &field) {
        if (field.find_first_of(",\"\n") == std::string::npos) {
            os << field;
            return;
        }
        os << '"';
        for (char c : field) {
            if (c == '"')
                os << '"';
            os << c;
        }
        os << '"';
    };
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            emit_field(row[i]);
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace csr
