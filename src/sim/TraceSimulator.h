/**
 * @file
 * Trace-driven two-level cache simulator (Section 3 methodology).
 *
 * Models the memory hierarchy the paper's trace study uses: a small
 * direct-mapped L1 above the L2 to which the cost-sensitive
 * replacement algorithm is applied.  The input is a sampled-processor
 * trace (the processor's accesses plus other processors' writes);
 * remote writes invalidate matching blocks in L1, L2 and the
 * policy's ETD.  The figure of merit is the aggregate miss cost of
 * the sampled processor's L2 misses under a static cost model.
 *
 * Both levels are CacheModel instances; the L1 is policy-less (a
 * direct-mapped filter), the L2 owns the replacement policy and the
 * shared access protocol.  Timing is not modelled here -- that is the
 * NUMA simulator's job.
 */

#ifndef CSR_SIM_TRACESIMULATOR_H
#define CSR_SIM_TRACESIMULATOR_H

#include <string>
#include <unordered_map>
#include <vector>

#include "cache/CacheModel.h"
#include "cache/PolicyFactory.h"
#include "cost/CostModel.h"
#include "telemetry/MetricRegistry.h"
#include "trace/TraceRecord.h"
#include "util/Stats.h"

namespace csr
{

/** Hierarchy configuration for the trace study (paper defaults). */
struct TraceSimConfig
{
    /** Disable to expose every reference to the L2 (required when an
     *  offline policy needs a policy-independent access stream). */
    bool useL1 = true;
    std::uint64_t l1Bytes = 4 * 1024;
    std::uint64_t l2Bytes = 16 * 1024;
    std::uint32_t l2Assoc = 4;
    std::uint32_t blockBytes = 64;
    /** Record per-block L2 miss counts in the result (used by
     *  TraceStudy to re-weight an LRU run under many cost models). */
    bool collectMissProfile = false;
    /** Run CacheModel/policy invariant checks every N sampled refs
     *  (--validate); 0 disables them.  A violation raises
     *  InvariantError instead of silently corrupting results. */
    std::uint64_t validateEveryRefs = 0;
};

/** Counters and the aggregate cost of one simulation. */
struct TraceSimResult
{
    std::string policyName;
    std::uint64_t sampledRefs = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t highCostMisses = 0; ///< misses costing > the minimum seen
    std::uint64_t invalidationsReceived = 0;
    double aggregateCost = 0.0;
    StatGroup policyStats;
    /** Per-block miss counts (only when collectMissProfile is set). */
    std::unordered_map<Addr, std::uint64_t> missProfile;

    double
    l2MissRate() const
    {
        const std::uint64_t l2_accesses = l2Hits + l2Misses;
        return l2_accesses
                   ? static_cast<double>(l2Misses) /
                         static_cast<double>(l2_accesses)
                   : 0.0;
    }

    /** Dump everything into the unified metric schema under
     *  "trace." (policy counters under "trace.policy."). */
    void exportMetrics(MetricRegistry &registry) const;
};

/**
 * The simulator itself.  One instance per (policy, cost model) run;
 * run() may be called once per instance.
 */
class TraceSimulator
{
  public:
    TraceSimulator(const TraceSimConfig &config, PolicyPtr policy,
                   const CostModel &cost_model);

    /**
     * Replay a sampled trace.
     * @param records     interleaved records (sampled accesses +
     *                    remote writes)
     * @param sampled_proc processor whose accesses are simulated
     */
    TraceSimResult run(const std::vector<TraceRecord> &records,
                       ProcId sampled_proc);

    /** Access to the policy (e.g. to prepare() an offline oracle). */
    ReplacementPolicy &policy() { return *l2_.policy(); }

  private:
    void handleRemoteWrite(Addr addr);
    void handleSampledAccess(Addr addr);
    /** --validate pass: throws InvariantError on corrupted state. */
    void checkInvariants() const;

    TraceSimConfig config_;
    CacheModel l1_; ///< direct-mapped filter, policy-less
    CacheModel l2_; ///< owns the replacement policy
    const CostModel &costModel_;
    TraceSimResult result_;
    Cost minCostSeen_;
};

/** Relative cost savings over LRU, in percent (the paper's metric). */
double relativeCostSavings(double lru_cost, double alg_cost);

} // namespace csr

#endif // CSR_SIM_TRACESIMULATOR_H
