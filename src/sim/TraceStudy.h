/**
 * @file
 * Harness for the Section 3 trace study: run a sampled trace under
 * LRU and under the cost-sensitive policies, and report relative
 * cost savings across (policy, cost ratio, HAF) sweeps.
 *
 * LRU is cost-blind, so its *miss profile* (how many times each block
 * misses) is independent of the cost model.  The study therefore
 * replays LRU once per trace and re-weights the profile for every
 * cost model, which keeps the Figure 3 sweep (hundreds of cost
 * points) tractable.
 */

#ifndef CSR_SIM_TRACESTUDY_H
#define CSR_SIM_TRACESTUDY_H

#include <unordered_map>

#include "sim/TraceSimulator.h"
#include "trace/SampledTrace.h"

namespace csr
{

/** Per-block LRU miss counts. */
using MissProfile = std::unordered_map<Addr, std::uint64_t>;

/**
 * One trace + hierarchy, many policies and cost models.
 */
class TraceStudy
{
  public:
    TraceStudy(const SampledTrace &trace, TraceSimConfig config = {});

    /** Aggregate cost under plain LRU for an arbitrary cost model
     *  (re-weights the cached LRU miss profile). */
    double lruCost(const CostModel &model) const;

    /** LRU miss count (cost-model independent). */
    std::uint64_t lruMissCount() const { return lruMisses_; }

    /** Full simulation of one policy under one cost model. */
    TraceSimResult run(PolicyKind kind, const CostModel &model,
                       const PolicyParams &params = {}) const;

    /** Relative cost savings of a policy over LRU, percent. */
    double savingsPct(PolicyKind kind, const CostModel &model,
                      const PolicyParams &params = {}) const;

    const SampledTrace &trace() const { return *trace_; }
    const TraceSimConfig &config() const { return config_; }

  private:
    const SampledTrace *trace_;
    TraceSimConfig config_;
    MissProfile lruProfile_;
    std::uint64_t lruMisses_ = 0;
};

} // namespace csr

#endif // CSR_SIM_TRACESTUDY_H
