#include "sim/TraceStudy.h"

#include "cache/BeladyPolicy.h"
#include "cost/StaticCostModels.h"
#include "util/Logging.h"

namespace csr
{

TraceStudy::TraceStudy(const SampledTrace &trace, TraceSimConfig config)
    : trace_(&trace), config_(config)
{
    // One LRU replay, cost model irrelevant (uniform), to capture the
    // cost-independent miss profile.
    TraceSimConfig profile_config = config_;
    profile_config.collectMissProfile = true;
    CacheGeometry l2(config_.l2Bytes, config_.l2Assoc, config_.blockBytes);
    UniformCost uniform;
    TraceSimulator sim(profile_config, makePolicy(PolicyKind::Lru, l2),
                       uniform);
    TraceSimResult res = sim.run(trace.records, trace.sampledProc);
    lruProfile_ = std::move(res.missProfile);
    lruMisses_ = res.l2Misses;
}

double
TraceStudy::lruCost(const CostModel &model) const
{
    double total = 0.0;
    for (const auto &[block, count] : lruProfile_)
        total += static_cast<double>(count) * model.missCost(block);
    return total;
}

TraceSimResult
TraceStudy::run(PolicyKind kind, const CostModel &model,
                const PolicyParams &params) const
{
    TraceSimConfig run_config = config_;
    CacheGeometry l2(config_.l2Bytes, config_.l2Assoc, config_.blockBytes);
    PolicyPtr policy = makePolicy(kind, l2, params);

    if (kind == PolicyKind::Opt || kind == PolicyKind::CostOpt) {
        // Offline oracles need a policy-independent access stream:
        // disable the L1 (inclusion victims would otherwise couple
        // the stream to the L2's own decisions) and prime the oracle
        // with the sampled processor's block addresses.
        run_config.useL1 = false;
        auto *oracle = static_cast<BeladyPolicy *>(policy.get());
        std::vector<Addr> stream;
        stream.reserve(trace_->records.size());
        for (const auto &rec : trace_->records) {
            if (rec.proc == trace_->sampledProc)
                stream.push_back(l2.blockAddr(rec.addr));
        }
        oracle->prepare(stream);
    }

    TraceSimulator sim(run_config, std::move(policy), model);
    return sim.run(trace_->records, trace_->sampledProc);
}

double
TraceStudy::savingsPct(PolicyKind kind, const CostModel &model,
                       const PolicyParams &params) const
{
    const double lru = lruCost(model);
    const TraceSimResult res = run(kind, model, params);
    return relativeCostSavings(lru, res.aggregateCost);
}

} // namespace csr
