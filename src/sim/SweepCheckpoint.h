/**
 * @file
 * Sweep checkpoint codec: how cell outcomes are journaled to and
 * restored from the JSONL checkpoint file.
 *
 * Layout of a checkpoint:
 *
 *   {"type":"header","version":1,"fingerprint":F,"cells":N}
 *   {"type":"cell","index":i,"hash":H,...counters...,...bit-doubles...}
 *   {"type":"failure","index":i,"hash":H,"kind":K,"message":M,...}
 *
 * The header's fingerprint is a hash over every expanded cell's
 * configuration hash, in grid order -- resuming against a different
 * grid (other presets, other axis values, even another ordering) is a
 * CheckpointError, not silent garbage.  Each cell/failure line also
 * carries its own cell hash, cross-checked against the expanded grid
 * on load.
 *
 * Doubles that must survive the resume byte-identity contract
 * (aggregate cost, LRU cost, savings) are stored as 16-hex-digit
 * IEEE-754 bit patterns, so a restored cell prints exactly what the
 * original run printed.
 */

#ifndef CSR_SIM_SWEEPCHECKPOINT_H
#define CSR_SIM_SWEEPCHECKPOINT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/SweepRunner.h"

namespace csr
{

/** Stable hash of a whole expanded grid (order-sensitive). */
std::uint64_t gridFingerprint(const std::vector<SweepCell> &cells);

/** Encode the journal's first line. */
std::string checkpointHeaderLine(std::uint64_t fingerprint,
                                 std::size_t cell_count);

/** Encode one completed cell. */
std::string checkpointCellLine(const SweepCellResult &result);

/** Encode one failed cell. */
std::string checkpointFailureLine(const CellFailure &failure);

/** Everything restored from a checkpoint. */
struct SweepCheckpointState
{
    /** A valid header line was found; appending to the file is safe.
     *  False for a missing/empty file (start a fresh journal). */
    bool headerValid = false;

    /** Cells with a journaled result; final, skipped on resume. */
    std::map<std::size_t, SweepCellResult> results;
    /** Cells whose *last* journaled outcome was a failure.  Not
     *  final: resume re-runs them (a later cell line in the journal
     *  supersedes an earlier failure line for the same index). */
    std::map<std::size_t, CellFailure> failures;

    std::size_t restoredCount() const
    {
        return results.size() + failures.size();
    }
};

/**
 * Read and validate @p path against the expanded @p cells.  A missing
 * or empty file (including one holding only a torn line -- the
 * signature of a process killed mid-append) restores nothing; a
 * malformed or mismatched journal raises CheckpointError.  An
 * unterminated *final* line is discarded silently.
 */
SweepCheckpointState loadSweepCheckpoint(
    const std::string &path, const std::vector<SweepCell> &cells);

} // namespace csr

#endif // CSR_SIM_SWEEPCHECKPOINT_H
