/**
 * @file
 * Parallel experiment sweep engine.
 *
 * The paper's evaluation is a grid: {policy} x {benchmark} x {cost
 * mapping} x {cost ratio, HAF} x {geometry, tunables}.  Every cell is
 * an independent trace-study simulation, so the grid is
 * embarrassingly parallel.  SweepRunner expands a declarative
 * SweepGrid into cells, fans them out across a bounded ThreadPool,
 * and aggregates the results in stable grid order.
 *
 * Determinism: every stochastic input of a cell is seeded from the
 * cell's own configuration hash (see SweepCell::hash()), never from a
 * shared generator, so results are bit-identical regardless of thread
 * count or completion order.  Expensive shared state -- the sampled
 * trace of a benchmark and the LRU miss profile of a (trace,
 * geometry) pair -- is built once per unique key (itself in parallel)
 * and then only read concurrently.
 */

#ifndef CSR_SIM_SWEEPRUNNER_H
#define CSR_SIM_SWEEPRUNNER_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/PolicyFactory.h"
#include "cost/CostModel.h"
#include "robust/Errors.h"
#include "sim/TraceStudy.h"
#include "trace/SampledTrace.h"
#include "trace/WorkloadFactory.h"
#include "util/Stats.h"
#include "util/Table.h"

namespace csr
{

/** Which Section 3 static cost mapping a cell uses. */
enum class CostMapping
{
    Random,     ///< RandomTwoCost(ratio, HAF)
    FirstTouch, ///< FirstTouchTwoCost from the trace's home map
};

std::string costMappingName(CostMapping mapping);

/** Parse "random" / "first-touch" (case-insensitive); throws
 *  ConfigError on unknown names. */
CostMapping parseCostMapping(const std::string &name);

/**
 * One point of a sweep: a full trace-study simulation configuration.
 */
struct SweepCell
{
    BenchmarkId benchmark = BenchmarkId::Barnes;
    /** Non-empty: this cell simulates a recorded .csrt trace instead
     *  of the synthetic benchmark (the benchmark field is then
     *  ignored; see SweepGrid::traceFiles). */
    std::string traceFile;
    PolicyKind policy = PolicyKind::Dcl;
    CostMapping mapping = CostMapping::Random;
    CostRatio ratio = CostRatio::finite(4);
    /** High-cost access fraction; only meaningful for Random. */
    double haf = 0.3;
    std::uint64_t l2Bytes = 16 * 1024;
    std::uint32_t l2Assoc = 4;
    unsigned etdAliasBits = 0;
    double depreciationFactor = 2.0;
    WorkloadScale scale = WorkloadScale::Small;

    /**
     * Stable 64-bit hash of every configuration field.  Used as the
     * seed of all of the cell's random draws, so a cell's result is a
     * pure function of its configuration.
     */
    std::uint64_t hash() const;

    /**
     * Hash of the cost-mapping fields only (benchmark, mapping,
     * ratio, HAF, scale).  Seeds RandomTwoCost, so every policy
     * evaluated at one experiment point sees the *same* cost mapping
     * -- the paper compares policies under a single mapping.
     */
    std::uint64_t mappingHash() const;

    /** Compact "barnes/dcl/random/r=4/haf=0.30" style label. */
    std::string label() const;
};

/**
 * Declarative cross product of sweep dimensions.  expand() emits the
 * cells in a stable nested-loop order (benchmark outermost,
 * depreciation innermost); FirstTouch mappings ignore the HAF axis,
 * so it is collapsed for them rather than duplicating cells.
 */
struct SweepGrid
{
    WorkloadScale scale = WorkloadScale::Small;
    std::vector<BenchmarkId> benchmarks = paperBenchmarks();
    /** Recorded .csrt traces (grid key "traces=a.csrt,b.csrt").  When
     *  non-empty this REPLACES the benchmarks axis: each file becomes
     *  a workload source cell, loaded via
     *  replay::loadReplaySampledTrace.  Empty (the default) leaves
     *  synthetic grids -- and their checkpoint fingerprints --
     *  untouched. */
    std::vector<std::string> traceFiles;
    std::vector<PolicyKind> policies = paperPolicies();
    std::vector<CostMapping> mappings = {CostMapping::Random};
    std::vector<CostRatio> ratios = {CostRatio::finite(4)};
    std::vector<double> hafs = {0.3};
    std::vector<std::uint64_t> l2Sizes = {16 * 1024};
    std::vector<std::uint32_t> assocs = {4};
    std::vector<unsigned> aliasBits = {0};
    std::vector<double> depreciations = {2.0};

    std::vector<SweepCell> expand() const;
};

/** Result of one cell's simulation. */
struct SweepCellResult
{
    SweepCell cell;
    std::size_t index = 0;    ///< position in the expanded grid
    std::uint64_t seed = 0;   ///< cell.hash(), the seed actually used
    std::uint64_t sampledRefs = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    double aggregateCost = 0.0;
    double lruCost = 0.0;
    double savingsPct = 0.0;
    double taskSec = 0.0;     ///< wall clock of this cell's task
};

/**
 * One cell that did not produce a result: the typed error it died
 * with and how many attempts it was given.  Failures are first-class
 * sweep output -- they appear in the JSON appendix and the failure
 * table, and are journaled to checkpoints like successes.
 */
struct CellFailure
{
    SweepCell cell;
    std::size_t index = 0;   ///< position in the expanded grid
    std::string kind;        ///< Error::kind(), or "std::exception"
    std::string message;     ///< what() of the final attempt
    unsigned attempts = 1;   ///< attempts consumed (>= 1)
};

/** Results of a whole sweep, in stable grid order. */
struct SweepResult
{
    std::vector<SweepCellResult> cells; ///< successes, grid order
    std::vector<CellFailure> failures;  ///< failed cells, grid order
    std::size_t gridCells = 0;          ///< size of the expanded grid
    std::size_t resumedCells = 0;       ///< restored from a checkpoint
    unsigned jobs = 1;
    double wallSec = 0.0;       ///< whole sweep, including setup
    double setupSec = 0.0;      ///< trace + LRU-profile construction
    double taskSecTotal = 0.0;  ///< sum of per-cell task times
    double taskSecMax = 0.0;

    bool complete() const { return failures.empty(); }

    /** Flat per-cell table (one row per *successful* cell). */
    TextTable toTable(const std::string &title = "sweep") const;

    /** Failure appendix: one row per failed cell (empty table when
     *  the sweep was complete). */
    TextTable failureTable() const;

    /** Jobs / wall / task-seconds / speedup / throughput summary. */
    TextTable timingTable() const;

    /**
     * Machine-readable dump: one object per cell in stable grid
     * order, plus the failure appendix (CI archives these as
     * artifacts).  @p include_timing adds the wall/setup/task
     * summary; pass false for byte-stable output across runs (the
     * checkpoint/resume equivalence contract).  Throws ConfigError if
     * @p path cannot be opened for writing.
     */
    void writeJson(const std::string &path,
                   bool include_timing = true) const;
};

/**
 * Robustness knobs of a sweep run.  The defaults reproduce the
 * historical behaviour (one attempt, no journal) except that a
 * failing cell no longer takes the whole grid down with it.
 */
struct SweepOptions
{
    /** Attempts per cell (>= 1).  Retries re-run the cell from
     *  scratch with a fresh fault-injection scope. */
    unsigned maxAttempts = 1;

    /** Base backoff before the first retry, doubled per further
     *  retry and capped at 1s.  Jitter is derived from the cell hash
     *  so the schedule is deterministic.  0 disables sleeping. */
    std::uint64_t retryBackoffMs = 10;

    /** Append-only JSONL journal of completed cells; empty = off. */
    std::string checkpointPath;

    /** Restore finished cells from checkpointPath and only run the
     *  remainder.  The journal must match the grid (fingerprint). */
    bool resume = false;

    /** Cadence (in sampled refs) of cache/policy invariant checks
     *  inside each cell's simulation; 0 = off. */
    std::uint64_t validateEveryRefs = 0;

    /**
     * Test hook: runs at the start of every (cell, attempt) inside
     * the per-cell guard.  A throw here is handled exactly like a
     * simulator failure, which makes the isolation/retry/checkpoint
     * machinery testable without a fault-injection build.
     */
    std::function<void(const SweepCell &, unsigned attempt)> cellProbe;
};

/**
 * The engine.  jobs == 0 means one worker per hardware thread.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(unsigned jobs = 0);

    /** Run every cell of @p grid; results come back in grid order.
     *  Cell failures are isolated (see SweepOptions). */
    SweepResult run(const SweepGrid &grid,
                    const SweepOptions &options = {}) const;

    using TraceMap =
        std::map<BenchmarkId, std::shared_ptr<const SampledTrace>>;

    /** Build the sampled traces of @p benchmarks in parallel (the
     *  engine's setup phase, also useful on its own, e.g. Table 1). */
    TraceMap buildTraces(const std::vector<BenchmarkId> &benchmarks,
                         WorkloadScale scale) const;

    unsigned jobs() const { return jobs_; }

  private:
    unsigned jobs_;
};

/** Named grid presets mirroring the paper's tables and figures:
 *  "table1", "fig3", "ablation-assoc", "ablation-cachesize",
 *  "ablation-depreciation", "ablation-etd", "smoke". */
SweepGrid presetGrid(const std::string &name);

/**
 * Parse a grid specification: either a preset name, or a semicolon
 * separated "key=v1,v2,..." list with keys benchmarks, policies,
 * mappings, ratios (numbers or "inf"), hafs, l2, assocs, alias-bits,
 * depreciations, scale.  Unset keys keep SweepGrid defaults.  Throws
 * ConfigError on malformed input.
 */
SweepGrid parseGridSpec(const std::string &spec);

} // namespace csr

#endif // CSR_SIM_SWEEPRUNNER_H
