/**
 * @file
 * Parallel experiment sweep engine.
 *
 * The paper's evaluation is a grid: {policy} x {benchmark} x {cost
 * mapping} x {cost ratio, HAF} x {geometry, tunables}.  Every cell is
 * an independent trace-study simulation, so the grid is
 * embarrassingly parallel.  SweepRunner expands a declarative
 * SweepGrid into cells, fans them out across a bounded ThreadPool,
 * and aggregates the results in stable grid order.
 *
 * Determinism: every stochastic input of a cell is seeded from the
 * cell's own configuration hash (see SweepCell::hash()), never from a
 * shared generator, so results are bit-identical regardless of thread
 * count or completion order.  Expensive shared state -- the sampled
 * trace of a benchmark and the LRU miss profile of a (trace,
 * geometry) pair -- is built once per unique key (itself in parallel)
 * and then only read concurrently.
 */

#ifndef CSR_SIM_SWEEPRUNNER_H
#define CSR_SIM_SWEEPRUNNER_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/PolicyFactory.h"
#include "cost/CostModel.h"
#include "sim/TraceStudy.h"
#include "trace/SampledTrace.h"
#include "trace/WorkloadFactory.h"
#include "util/Stats.h"
#include "util/Table.h"

namespace csr
{

/** Which Section 3 static cost mapping a cell uses. */
enum class CostMapping
{
    Random,     ///< RandomTwoCost(ratio, HAF)
    FirstTouch, ///< FirstTouchTwoCost from the trace's home map
};

std::string costMappingName(CostMapping mapping);

/** Parse "random" / "first-touch" (case-insensitive); fatal on
 *  unknown names. */
CostMapping parseCostMapping(const std::string &name);

/**
 * One point of a sweep: a full trace-study simulation configuration.
 */
struct SweepCell
{
    BenchmarkId benchmark = BenchmarkId::Barnes;
    PolicyKind policy = PolicyKind::Dcl;
    CostMapping mapping = CostMapping::Random;
    CostRatio ratio = CostRatio::finite(4);
    /** High-cost access fraction; only meaningful for Random. */
    double haf = 0.3;
    std::uint64_t l2Bytes = 16 * 1024;
    std::uint32_t l2Assoc = 4;
    unsigned etdAliasBits = 0;
    double depreciationFactor = 2.0;
    WorkloadScale scale = WorkloadScale::Small;

    /**
     * Stable 64-bit hash of every configuration field.  Used as the
     * seed of all of the cell's random draws, so a cell's result is a
     * pure function of its configuration.
     */
    std::uint64_t hash() const;

    /**
     * Hash of the cost-mapping fields only (benchmark, mapping,
     * ratio, HAF, scale).  Seeds RandomTwoCost, so every policy
     * evaluated at one experiment point sees the *same* cost mapping
     * -- the paper compares policies under a single mapping.
     */
    std::uint64_t mappingHash() const;

    /** Compact "barnes/dcl/random/r=4/haf=0.30" style label. */
    std::string label() const;
};

/**
 * Declarative cross product of sweep dimensions.  expand() emits the
 * cells in a stable nested-loop order (benchmark outermost,
 * depreciation innermost); FirstTouch mappings ignore the HAF axis,
 * so it is collapsed for them rather than duplicating cells.
 */
struct SweepGrid
{
    WorkloadScale scale = WorkloadScale::Small;
    std::vector<BenchmarkId> benchmarks = paperBenchmarks();
    std::vector<PolicyKind> policies = paperPolicies();
    std::vector<CostMapping> mappings = {CostMapping::Random};
    std::vector<CostRatio> ratios = {CostRatio::finite(4)};
    std::vector<double> hafs = {0.3};
    std::vector<std::uint64_t> l2Sizes = {16 * 1024};
    std::vector<std::uint32_t> assocs = {4};
    std::vector<unsigned> aliasBits = {0};
    std::vector<double> depreciations = {2.0};

    std::vector<SweepCell> expand() const;
};

/** Result of one cell's simulation. */
struct SweepCellResult
{
    SweepCell cell;
    std::size_t index = 0;    ///< position in the expanded grid
    std::uint64_t seed = 0;   ///< cell.hash(), the seed actually used
    std::uint64_t sampledRefs = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    double aggregateCost = 0.0;
    double lruCost = 0.0;
    double savingsPct = 0.0;
    double taskSec = 0.0;     ///< wall clock of this cell's task
};

/** Results of a whole sweep, in stable grid order. */
struct SweepResult
{
    std::vector<SweepCellResult> cells;
    unsigned jobs = 1;
    double wallSec = 0.0;       ///< whole sweep, including setup
    double setupSec = 0.0;      ///< trace + LRU-profile construction
    double taskSecTotal = 0.0;  ///< sum of per-cell task times
    double taskSecMax = 0.0;

    /** Flat per-cell table (one row per cell, grid order). */
    TextTable toTable(const std::string &title = "sweep") const;

    /** Jobs / wall / task-seconds / speedup / throughput summary. */
    TextTable timingTable() const;

    /**
     * Machine-readable dump: the timing summary plus one object per
     * cell, in stable grid order (CI archives these as artifacts).
     * Fatal if @p path cannot be opened for writing.
     */
    void writeJson(const std::string &path) const;
};

/**
 * The engine.  jobs == 0 means one worker per hardware thread.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(unsigned jobs = 0);

    /** Run every cell of @p grid; results come back in grid order. */
    SweepResult run(const SweepGrid &grid) const;

    using TraceMap =
        std::map<BenchmarkId, std::shared_ptr<const SampledTrace>>;

    /** Build the sampled traces of @p benchmarks in parallel (the
     *  engine's setup phase, also useful on its own, e.g. Table 1). */
    TraceMap buildTraces(const std::vector<BenchmarkId> &benchmarks,
                         WorkloadScale scale) const;

    unsigned jobs() const { return jobs_; }

  private:
    unsigned jobs_;
};

/** Named grid presets mirroring the paper's tables and figures:
 *  "table1", "fig3", "ablation-assoc", "ablation-cachesize",
 *  "ablation-depreciation", "ablation-etd", "smoke". */
SweepGrid presetGrid(const std::string &name);

/**
 * Parse a grid specification: either a preset name, or a semicolon
 * separated "key=v1,v2,..." list with keys benchmarks, policies,
 * mappings, ratios (numbers or "inf"), hafs, l2, assocs, alias-bits,
 * depreciations, scale.  Unset keys keep SweepGrid defaults.  Fatal
 * on malformed input.
 */
SweepGrid parseGridSpec(const std::string &spec);

} // namespace csr

#endif // CSR_SIM_SWEEPRUNNER_H
