#include "sim/SweepCheckpoint.h"

#include "robust/CheckpointLog.h"
#include "util/Random.h"

namespace csr
{

namespace
{

constexpr std::uint64_t kCheckpointVersion = 1;

std::string
uintField(const char *key, std::uint64_t v)
{
    return std::string("\"") + key + "\":" + std::to_string(v);
}

std::string
bitsField(const char *key, double v)
{
    return std::string("\"") + key + "\":\"" + jsonDoubleBits(v) + "\"";
}

std::string
stringField(const char *key, const std::string &v)
{
    return std::string("\"") + key + "\":\"" + jsonEscape(v) + "\"";
}

} // namespace

std::uint64_t
gridFingerprint(const std::vector<SweepCell> &cells)
{
    std::uint64_t h = hashMix64(0x5EEB0A4Dull ^ cells.size());
    for (const SweepCell &cell : cells)
        h = hashMix64(h ^ cell.hash());
    return h;
}

std::string
checkpointHeaderLine(std::uint64_t fingerprint, std::size_t cell_count)
{
    return "{\"type\":\"header\"," +
           uintField("version", kCheckpointVersion) + "," +
           uintField("fingerprint", fingerprint) + "," +
           uintField("cells", cell_count) + "}";
}

std::string
checkpointCellLine(const SweepCellResult &result)
{
    return "{\"type\":\"cell\"," + uintField("index", result.index) +
           "," + uintField("hash", result.cell.hash()) + "," +
           uintField("sampledRefs", result.sampledRefs) + "," +
           uintField("l2Hits", result.l2Hits) + "," +
           uintField("l2Misses", result.l2Misses) + "," +
           bitsField("aggregateCost", result.aggregateCost) + "," +
           bitsField("lruCost", result.lruCost) + "," +
           bitsField("savingsPct", result.savingsPct) + "}";
}

std::string
checkpointFailureLine(const CellFailure &failure)
{
    return "{\"type\":\"failure\"," + uintField("index", failure.index) +
           "," + uintField("hash", failure.cell.hash()) + "," +
           stringField("kind", failure.kind) + "," +
           stringField("message", failure.message) + "," +
           uintField("attempts", failure.attempts) + "}";
}

SweepCheckpointState
loadSweepCheckpoint(const std::string &path,
                    const std::vector<SweepCell> &cells)
{
    SweepCheckpointState state;
    const std::vector<JsonlRecord> records = readJsonlFile(path);

    for (const JsonlRecord &record : records) {
        if (!record.terminated) {
            // Torn final append of a killed process: drop it.  (The
            // reader only ever sees an unterminated line last, so no
            // valid data can follow it.)
            break;
        }
        const JsonLineView line(record);
        const std::string type = line.getString("type");
        const auto failAt = [&](const std::string &what) {
            throw CheckpointError(
                "checkpoint '" + path + "' line " +
                std::to_string(record.lineNumber) + ": " + what);
        };

        if (!state.headerValid) {
            if (type != "header")
                failAt("first line is not a header");
            if (line.getUInt("version") != kCheckpointVersion)
                failAt("unsupported checkpoint version " +
                       std::to_string(line.getUInt("version")));
            if (line.getUInt("cells") != cells.size() ||
                line.getUInt("fingerprint") != gridFingerprint(cells))
                failAt("checkpoint was written for a different grid");
            state.headerValid = true;
            continue;
        }

        if (type == "header")
            failAt("duplicate header");
        if (type != "cell" && type != "failure")
            failAt("unknown record type '" + type + "'");

        const std::size_t index =
            static_cast<std::size_t>(line.getUInt("index"));
        if (index >= cells.size())
            failAt("cell index " + std::to_string(index) +
                   " out of range");
        if (line.getUInt("hash") != cells[index].hash())
            failAt("cell " + std::to_string(index) +
                   " does not match the grid");
        // Re-run cells append a second line for the same index: a
        // later outcome supersedes an earlier *failure* (the resume
        // path retries failed cells), but nothing may follow a
        // recorded success.
        if (state.results.count(index))
            failAt("duplicate entry for completed cell " +
                   std::to_string(index));

        if (type == "cell") {
            state.failures.erase(index);
            SweepCellResult result;
            result.cell = cells[index];
            result.index = index;
            result.seed = cells[index].hash();
            result.sampledRefs = line.getUInt("sampledRefs");
            result.l2Hits = line.getUInt("l2Hits");
            result.l2Misses = line.getUInt("l2Misses");
            result.aggregateCost = line.getDoubleBits("aggregateCost");
            result.lruCost = line.getDoubleBits("lruCost");
            result.savingsPct = line.getDoubleBits("savingsPct");
            state.results.emplace(index, std::move(result));
        } else {
            CellFailure failure;
            failure.cell = cells[index];
            failure.index = index;
            failure.kind = line.getString("kind");
            failure.message = line.getString("message");
            failure.attempts =
                static_cast<unsigned>(line.getUInt("attempts"));
            state.failures[index] = std::move(failure);
        }
    }
    return state;
}

} // namespace csr
