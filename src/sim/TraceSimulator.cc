#include "sim/TraceSimulator.h"

#include <limits>

#include "util/Logging.h"

namespace csr
{

TraceSimulator::TraceSimulator(const TraceSimConfig &config,
                               PolicyPtr policy,
                               const CostModel &cost_model)
    : config_(config),
      l1Geom_(config.l1Bytes, 1, config.blockBytes),
      l2Geom_(config.l2Bytes, config.l2Assoc, config.blockBytes),
      l1_(l1Geom_), l2_(l2Geom_), policy_(std::move(policy)),
      costModel_(cost_model),
      minCostSeen_(std::numeric_limits<Cost>::max())
{
    csr_assert(policy_ != nullptr, "null policy");
    csr_assert(policy_->geometry().numSets() == l2Geom_.numSets() &&
               policy_->geometry().assoc() == l2Geom_.assoc(),
               "policy geometry does not match the L2");
    result_.policyName = policy_->name();
}

TraceSimResult
TraceSimulator::run(const std::vector<TraceRecord> &records,
                    ProcId sampled_proc)
{
    for (const auto &rec : records) {
        if (rec.proc != sampled_proc) {
            // Only remote *writes* appear in a sampled trace; they
            // model coherence invalidations (Section 3.1).
            handleRemoteWrite(rec.addr);
        } else {
            handleSampledAccess(rec.addr);
        }
    }
    result_.policyStats = policy_->stats();
    return result_;
}

void
TraceSimulator::handleRemoteWrite(Addr addr)
{
    bool invalidated = false;

    if (config_.useL1) {
        const std::uint32_t set = l1Geom_.setIndex(addr);
        const int way = l1_.findWay(set, l1Geom_.tag(addr));
        if (way != kInvalidWay) {
            l1_.invalidateWay(set, static_cast<std::uint32_t>(way));
            invalidated = true;
        }
    }

    const std::uint32_t set = l2Geom_.setIndex(addr);
    const Addr tag = l2Geom_.tag(addr);
    const int way = l2_.findWay(set, tag);
    // The policy is always told: a matching ETD entry must be
    // scrubbed even when the block is no longer cached (Section 2.4).
    policy_->invalidate(set, tag, way);
    if (way != kInvalidWay) {
        l2_.invalidateWay(set, static_cast<std::uint32_t>(way));
        invalidated = true;
    }

    if (invalidated)
        ++result_.invalidationsReceived;
}

void
TraceSimulator::handleSampledAccess(Addr addr)
{
    ++result_.sampledRefs;

    if (config_.useL1) {
        const std::uint32_t set = l1Geom_.setIndex(addr);
        if (l1_.findWay(set, l1Geom_.tag(addr)) != kInvalidWay) {
            ++result_.l1Hits;
            return;
        }
    }

    const std::uint32_t set = l2Geom_.setIndex(addr);
    const Addr tag = l2Geom_.tag(addr);
    const int hit_way = l2_.findWay(set, tag);
    policy_->access(set, tag, hit_way);

    if (hit_way != kInvalidWay) {
        ++result_.l2Hits;
    } else {
        ++result_.l2Misses;
        const Addr block = l2Geom_.blockAddr(addr);
        const Cost cost = costModel_.missCost(block);
        result_.aggregateCost += cost;
        if (config_.collectMissProfile)
            ++result_.missProfile[block];
        if (cost < minCostSeen_)
            minCostSeen_ = cost;
        if (cost > minCostSeen_)
            ++result_.highCostMisses;

        int way = l2_.findInvalidWay(set);
        if (way == kInvalidWay) {
            way = policy_->selectVictim(set);
            // Enforce inclusion: the evicted block leaves the L1 too.
            const Addr victim_block =
                l2Geom_.blockAddrOf(set, l2_.at(set, way).tag);
            if (config_.useL1) {
                const Addr victim_addr = victim_block << l2Geom_.blockBits();
                const std::uint32_t l1set = l1Geom_.setIndex(victim_addr);
                const int l1way =
                    l1_.findWay(l1set, l1Geom_.tag(victim_addr));
                if (l1way != kInvalidWay)
                    l1_.invalidateWay(l1set,
                                      static_cast<std::uint32_t>(l1way));
            }
        }
        l2_.install(set, static_cast<std::uint32_t>(way), tag);
        // The predicted cost of the block's *next* miss under a
        // static model is the same static cost.
        policy_->fill(set, way, tag, cost);
    }

    if (config_.useL1) {
        const std::uint32_t l1set = l1Geom_.setIndex(addr);
        l1_.install(l1set, 0, l1Geom_.tag(addr));
    }
}

double
relativeCostSavings(double lru_cost, double alg_cost)
{
    if (lru_cost == 0.0)
        return 0.0;
    return 100.0 * (lru_cost - alg_cost) / lru_cost;
}

} // namespace csr
