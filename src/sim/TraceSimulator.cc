#include "sim/TraceSimulator.h"

#include <limits>

#include "robust/FaultInjector.h"
#include "telemetry/Telemetry.h"
#include "util/Logging.h"

namespace csr
{

namespace
{

/** Cadence of the fault-injection probe in the replay loop: cheap
 *  enough to leave in every CSR_FAULT_INJECT build, frequent enough
 *  that realistic fault rates hit mid-simulation. */
constexpr std::uint64_t kFaultProbeEveryRefs = 4096;

} // namespace

TraceSimulator::TraceSimulator(const TraceSimConfig &config,
                               PolicyPtr policy,
                               const CostModel &cost_model)
    : config_(config),
      l1_(CacheGeometry(config.l1Bytes, 1, config.blockBytes)),
      l2_(CacheGeometry(config.l2Bytes, config.l2Assoc,
                        config.blockBytes),
          std::move(policy)),
      costModel_(cost_model),
      minCostSeen_(std::numeric_limits<Cost>::max())
{
    csr_assert(l2_.policy() != nullptr, "null policy");
    result_.policyName = l2_.policy()->name();
}

TraceSimResult
TraceSimulator::run(const std::vector<TraceRecord> &records,
                    ProcId sampled_proc)
{
    for (const auto &rec : records) {
        if (rec.proc != sampled_proc) {
            // Only remote *writes* appear in a sampled trace; they
            // model coherence invalidations (Section 3.1).
            handleRemoteWrite(rec.addr);
        } else {
            handleSampledAccess(rec.addr);
            if (result_.sampledRefs % kFaultProbeEveryRefs == 0)
                CSR_FAULT_POINT(FaultSite::TraceSim,
                                "trace replay loop");
            if (config_.validateEveryRefs != 0 &&
                result_.sampledRefs % config_.validateEveryRefs == 0)
                checkInvariants();
        }
    }
    if (config_.validateEveryRefs != 0)
        checkInvariants();
    result_.policyStats = l2_.policy()->stats();
    return result_;
}

void
TraceSimulator::checkInvariants() const
{
    if (config_.useL1)
        l1_.checkInvariants();
    l2_.checkInvariants();
}

void
TraceSimulator::handleRemoteWrite(Addr addr)
{
    bool invalidated = false;

    if (config_.useL1) {
        const CacheGeometry &g = l1_.geometry();
        const std::uint32_t set = g.setIndex(addr);
        const int way = l1_.lookup(set, g.tag(addr));
        if (way != kInvalidWay) {
            l1_.invalidateWay(set, way);
            invalidated = true;
        }
    }

    const CacheGeometry &g = l2_.geometry();
    // The policy is always told: a matching ETD entry must be
    // scrubbed even when the block is no longer cached (Section 2.4).
    if (l2_.invalidateTag(g.setIndex(addr), g.tag(addr)) != kInvalidWay)
        invalidated = true;

    if (invalidated)
        ++result_.invalidationsReceived;
}

void
TraceSimulator::handleSampledAccess(Addr addr)
{
    ++result_.sampledRefs;

    if (config_.useL1) {
        const CacheGeometry &g = l1_.geometry();
        if (l1_.lookup(g.setIndex(addr), g.tag(addr)) != kInvalidWay) {
            ++result_.l1Hits;
            return;
        }
    }

    const CacheGeometry &g = l2_.geometry();
    const std::uint32_t set = g.setIndex(addr);
    const Addr tag = g.tag(addr);
    const int hit_way = l2_.access(set, tag);

    if (hit_way != kInvalidWay) {
        ++result_.l2Hits;
    } else {
        ++result_.l2Misses;
        const Addr block = g.blockAddr(addr);
        const Cost cost = costModel_.missCost(block);
        CSR_TRACE_INSTANT_V("sim", "l2.miss_cost", cost);
        result_.aggregateCost += cost;
        if (config_.collectMissProfile)
            ++result_.missProfile[block];
        if (cost < minCostSeen_)
            minCostSeen_ = cost;
        if (cost > minCostSeen_)
            ++result_.highCostMisses;

        // The predicted cost of the block's *next* miss under a
        // static model is the same static cost.
        l2_.fillVictimOrFree(
            set, tag, cost, 0,
            [&](int, Addr victim_tag, std::uint32_t) {
                CSR_TRACE_INSTANT("sim", "l2.evict");
                if (!config_.useL1)
                    return;
                // Enforce inclusion: the evicted block leaves the L1
                // too.
                const Addr victim_addr = g.blockAddrOf(set, victim_tag)
                                         << g.blockBits();
                const CacheGeometry &l1g = l1_.geometry();
                const std::uint32_t l1set = l1g.setIndex(victim_addr);
                const int l1way = l1_.lookup(l1set, l1g.tag(victim_addr));
                if (l1way != kInvalidWay)
                    l1_.invalidateWay(l1set, l1way);
            });
    }

    if (config_.useL1) {
        const CacheGeometry &l1g = l1_.geometry();
        l1_.install(l1g.setIndex(addr), 0, l1g.tag(addr));
    }
}

void
TraceSimResult::exportMetrics(MetricRegistry &registry) const
{
    registry.importCounters(policyStats, "trace.policy.");
    registry.setCounter("trace.sampled_refs", sampledRefs);
    registry.setCounter("trace.l1_hits", l1Hits);
    registry.setCounter("trace.l2_hits", l2Hits);
    registry.setCounter("trace.l2_misses", l2Misses);
    registry.setCounter("trace.high_cost_misses", highCostMisses);
    registry.setCounter("trace.invalidations", invalidationsReceived);
    registry.stat("trace.aggregate_cost").add(aggregateCost);
}

double
relativeCostSavings(double lru_cost, double alg_cost)
{
    if (lru_cost == 0.0)
        return 0.0;
    return 100.0 * (lru_cost - alg_cost) / lru_cost;
}

} // namespace csr
