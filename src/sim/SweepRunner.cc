#include "sim/SweepRunner.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <tuple>
#include <utility>

#include "cost/StaticCostModels.h"
#include "replay/Format.h"
#include "replay/SweepTrace.h"
#include "robust/CheckpointLog.h"
#include "robust/FaultInjector.h"
#include "sim/SweepCheckpoint.h"
#include "telemetry/Telemetry.h"
#include "util/Logging.h"
#include "util/Random.h"
#include "util/ThreadPool.h"

namespace csr
{

namespace
{

std::uint64_t
mixInto(std::uint64_t h, std::uint64_t v)
{
    return hashMix64(h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) +
                          (h >> 2)));
}

std::uint64_t
mixDouble(std::uint64_t h, double v)
{
    return mixInto(h, std::bit_cast<std::uint64_t>(v));
}

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::vector<std::string>
splitList(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t end = s.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

double
parseNumberFor(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        throw ConfigError("grid key '" + key + "': '" + v +
                          "' is not a number");
    return parsed;
}

std::uint64_t
parseUIntFor(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    const std::uint64_t parsed = std::strtoull(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        throw ConfigError("grid key '" + key + "': '" + v +
                          "' is not an unsigned integer");
    return parsed;
}

WorkloadScale
parseScaleName(const std::string &name)
{
    const std::string s = lowered(name);
    if (s == "test")
        return WorkloadScale::Test;
    if (s == "small")
        return WorkloadScale::Small;
    if (s == "full")
        return WorkloadScale::Full;
    throw ConfigError("unknown scale '" + name + "' (test|small|full)");
}

/** (workload source, l2Bytes, assoc): what a TraceStudy is keyed by.
 *  The source is the benchmark for synthetic cells and the trace path
 *  for .csrt cells. */
using StudyKey = std::tuple<BenchmarkId, std::string, std::uint64_t,
                            std::uint32_t>;

StudyKey
studyKeyOf(const SweepCell &cell)
{
    return {cell.benchmark, cell.traceFile, cell.l2Bytes, cell.l2Assoc};
}

/** Human label of a cell's workload source (tables, JSON). */
std::string
sourceNameOf(const SweepCell &cell)
{
    return cell.traceFile.empty() ? benchmarkName(cell.benchmark)
                                  : replay::traceCellName(cell.traceFile);
}

/** Loaded .csrt traces, keyed by path. */
using FileTraceMap =
    std::map<std::string, std::shared_ptr<const SampledTrace>>;

FileTraceMap
buildFileTracesWith(ThreadPool &pool,
                    const std::vector<std::string> &paths,
                    std::uint32_t block_bytes)
{
    std::vector<std::string> unique = paths;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()),
                 unique.end());

    std::vector<std::shared_ptr<const SampledTrace>> built(
        unique.size());
    parallelFor(pool, unique.size(), [&](std::size_t i) {
        built[i] = std::make_shared<const SampledTrace>(
            replay::loadReplaySampledTrace(unique[i], block_bytes));
    });

    FileTraceMap traces;
    for (std::size_t i = 0; i < unique.size(); ++i)
        traces.emplace(unique[i], std::move(built[i]));
    return traces;
}

SweepRunner::TraceMap
buildTracesWith(ThreadPool &pool,
                const std::vector<BenchmarkId> &benchmarks,
                WorkloadScale scale)
{
    std::vector<BenchmarkId> unique = benchmarks;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()),
                 unique.end());

    std::vector<std::shared_ptr<const SampledTrace>> built(unique.size());
    parallelFor(pool, unique.size(), [&](std::size_t i) {
        auto workload = makeWorkload(unique[i], scale);
        built[i] = std::make_shared<const SampledTrace>(
            buildSampledTrace(*workload, /*sampled=*/1));
    });

    SweepRunner::TraceMap traces;
    for (std::size_t i = 0; i < unique.size(); ++i)
        traces.emplace(unique[i], std::move(built[i]));
    return traces;
}

} // namespace

std::string
costMappingName(CostMapping mapping)
{
    switch (mapping) {
      case CostMapping::Random:
        return "random";
      case CostMapping::FirstTouch:
        return "first-touch";
    }
    return "?";
}

CostMapping
parseCostMapping(const std::string &name)
{
    const std::string s = lowered(name);
    if (s == "random")
        return CostMapping::Random;
    if (s == "first-touch" || s == "firsttouch" || s == "ft")
        return CostMapping::FirstTouch;
    throw ConfigError("unknown cost mapping '" + name +
                      "' (random|first-touch)");
}

std::uint64_t
SweepCell::mappingHash() const
{
    std::uint64_t h = 0xC0517B10ull;
    h = mixInto(h, static_cast<std::uint64_t>(benchmark));
    // Only trace cells mix the path in, so the fingerprints of every
    // pre-existing synthetic grid (and their checkpoints) are stable.
    if (!traceFile.empty())
        h = mixInto(h, replay::format::fnv1aString(traceFile));
    h = mixInto(h, static_cast<std::uint64_t>(mapping));
    h = mixDouble(h, ratio.low);
    h = mixDouble(h, ratio.high);
    h = mixInto(h, ratio.infinite ? 1 : 0);
    h = mixDouble(h, mapping == CostMapping::Random ? haf : 0.0);
    h = mixInto(h, static_cast<std::uint64_t>(scale));
    return h;
}

std::uint64_t
SweepCell::hash() const
{
    std::uint64_t h = mappingHash();
    h = mixInto(h, static_cast<std::uint64_t>(policy));
    h = mixInto(h, l2Bytes);
    h = mixInto(h, l2Assoc);
    h = mixInto(h, etdAliasBits);
    h = mixDouble(h, depreciationFactor);
    return h;
}

std::string
SweepCell::label() const
{
    std::string out = sourceNameOf(*this) + "/" +
                      policyKindName(policy) + "/" +
                      costMappingName(mapping) + "/" + ratio.label();
    if (mapping == CostMapping::Random)
        out += "/haf=" + TextTable::num(haf, 2);
    return out;
}

std::vector<SweepCell>
SweepGrid::expand() const
{
    // The HAF axis only parameterizes the random mapping; collapse it
    // for first-touch cells instead of emitting duplicates.
    const std::vector<double> one_haf = {0.0};

    // A non-empty traceFiles list replaces the benchmarks axis: the
    // workload-source loop runs over recorded traces instead.
    const std::size_t num_sources =
        traceFiles.empty() ? benchmarks.size() : traceFiles.size();

    std::vector<SweepCell> cells;
    for (std::size_t source = 0; source < num_sources; ++source) {
        for (PolicyKind policy : policies) {
            for (CostMapping mapping : mappings) {
                const auto &mapping_hafs =
                    mapping == CostMapping::Random ? hafs : one_haf;
                for (const CostRatio &ratio : ratios) {
                    for (double haf : mapping_hafs) {
                        for (std::uint64_t l2 : l2Sizes) {
                            for (std::uint32_t assoc : assocs) {
                                for (unsigned alias : aliasBits) {
                                    for (double depr : depreciations) {
                                        SweepCell cell;
                                        if (traceFiles.empty())
                                            cell.benchmark =
                                                benchmarks[source];
                                        else
                                            cell.traceFile =
                                                traceFiles[source];
                                        cell.policy = policy;
                                        cell.mapping = mapping;
                                        cell.ratio = ratio;
                                        cell.haf = haf;
                                        cell.l2Bytes = l2;
                                        cell.l2Assoc = assoc;
                                        cell.etdAliasBits = alias;
                                        cell.depreciationFactor = depr;
                                        cell.scale = scale;
                                        cells.push_back(cell);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return cells;
}

TextTable
SweepResult::toTable(const std::string &title) const
{
    TextTable table(title);
    table.setHeader({"#", "Benchmark", "Policy", "Mapping", "Ratio",
                     "HAF", "L2", "Assoc", "Alias", "Depr",
                     "L2 misses", "Agg cost", "LRU cost",
                     "Savings (%)"});
    for (const SweepCellResult &res : cells) {
        const SweepCell &cell = res.cell;
        table.addRow({
            std::to_string(res.index),
            sourceNameOf(cell),
            policyKindName(cell.policy),
            costMappingName(cell.mapping),
            cell.ratio.label(),
            cell.mapping == CostMapping::Random
                ? TextTable::num(cell.haf, 2)
                : "-",
            std::to_string(cell.l2Bytes / 1024) + "KB",
            std::to_string(cell.l2Assoc),
            cell.etdAliasBits == 0
                ? "full"
                : std::to_string(cell.etdAliasBits) + "b",
            TextTable::num(cell.depreciationFactor, 1),
            TextTable::count(res.l2Misses),
            TextTable::num(res.aggregateCost, 4),
            TextTable::num(res.lruCost, 4),
            TextTable::num(res.savingsPct, 2),
        });
    }
    return table;
}

TextTable
SweepResult::failureTable() const
{
    TextTable table("failed cells");
    table.setHeader({"#", "Cell", "Error", "Attempts", "Message"});
    for (const CellFailure &failure : failures) {
        // The appendix is a summary; multi-line messages (stall
        // snapshots) keep only their first line here.
        std::string brief = failure.message;
        const std::size_t nl = brief.find('\n');
        if (nl != std::string::npos)
            brief = brief.substr(0, nl) + " [...]";
        table.addRow({
            std::to_string(failure.index),
            failure.cell.label(),
            failure.kind,
            std::to_string(failure.attempts),
            brief,
        });
    }
    return table;
}

TextTable
SweepResult::timingTable() const
{
    TextTable table("sweep timing");
    table.setHeader({"Metric", "Value"});
    table.addRow({"jobs", std::to_string(jobs)});
    table.addRow({"grid cells", std::to_string(gridCells)});
    table.addRow({"succeeded", std::to_string(cells.size())});
    table.addRow({"failed", std::to_string(failures.size())});
    table.addRow({"resumed", std::to_string(resumedCells)});
    table.addRow({"wall (s)", TextTable::num(wallSec, 3)});
    table.addRow({"setup (s)", TextTable::num(setupSec, 3)});
    table.addRow({"task total (s)", TextTable::num(taskSecTotal, 3)});
    table.addRow({"task max (s)", TextTable::num(taskSecMax, 3)});
    table.addRow({"speedup",
                  TextTable::num(wallSec > 0.0
                                     ? taskSecTotal / wallSec
                                     : 0.0, 2)});
    table.addRow({"cells/s",
                  TextTable::num(wallSec > 0.0
                                     ? static_cast<double>(cells.size()) /
                                           wallSec
                                     : 0.0, 2)});
    return table;
}

void
SweepResult::writeJson(const std::string &path,
                       bool include_timing) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw ConfigError("cannot write sweep JSON to '" + path + "'");
    std::fprintf(f, "{\n");
    if (include_timing) {
        // Timing is inherently run-dependent; byte-stable consumers
        // (the resume-equivalence check) ask for it to be left out.
        std::fprintf(f,
                     "  \"jobs\": %u,\n"
                     "  \"wallSec\": %.6f,\n"
                     "  \"setupSec\": %.6f,\n"
                     "  \"taskSecTotal\": %.6f,\n"
                     "  \"taskSecMax\": %.6f,\n",
                     jobs, wallSec, setupSec, taskSecTotal,
                     taskSecMax);
    }
    std::fprintf(f,
                 "  \"gridCells\": %zu,\n"
                 "  \"succeeded\": %zu,\n"
                 "  \"failed\": %zu,\n"
                 "  \"cells\": [\n",
                 gridCells, cells.size(), failures.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCellResult &res = cells[i];
        const SweepCell &cell = res.cell;
        std::fprintf(
            f,
            "    {\"index\": %zu, \"benchmark\": \"%s\","
            " \"policy\": \"%s\", \"mapping\": \"%s\","
            " \"ratio\": \"%s\", \"haf\": %.4f,"
            " \"l2Bytes\": %llu, \"assoc\": %u, \"aliasBits\": %u,"
            " \"depreciation\": %.4f, \"seed\": %llu,"
            " \"sampledRefs\": %llu, \"l2Hits\": %llu,"
            " \"l2Misses\": %llu, \"aggregateCost\": %.6f,"
            " \"lruCost\": %.6f, \"savingsPct\": %.6f}%s\n",
            res.index, jsonEscape(sourceNameOf(cell)).c_str(),
            policyKindName(cell.policy).c_str(),
            costMappingName(cell.mapping).c_str(),
            cell.ratio.label().c_str(), cell.haf,
            static_cast<unsigned long long>(cell.l2Bytes),
            cell.l2Assoc, cell.etdAliasBits, cell.depreciationFactor,
            static_cast<unsigned long long>(res.seed),
            static_cast<unsigned long long>(res.sampledRefs),
            static_cast<unsigned long long>(res.l2Hits),
            static_cast<unsigned long long>(res.l2Misses),
            res.aggregateCost, res.lruCost, res.savingsPct,
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"failures\": [\n");
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const CellFailure &failure = failures[i];
        std::fprintf(
            f,
            "    {\"index\": %zu, \"cell\": \"%s\","
            " \"kind\": \"%s\", \"attempts\": %u,"
            " \"message\": \"%s\"}%s\n",
            failure.index, jsonEscape(failure.cell.label()).c_str(),
            jsonEscape(failure.kind).c_str(), failure.attempts,
            jsonEscape(failure.message).c_str(),
            i + 1 < failures.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : ThreadPool::defaultThreads())
{
}

SweepRunner::TraceMap
SweepRunner::buildTraces(const std::vector<BenchmarkId> &benchmarks,
                         WorkloadScale scale) const
{
    ThreadPool pool(jobs_);
    return buildTracesWith(pool, benchmarks, scale);
}

namespace
{

/** Deterministic capped exponential backoff before retry @p attempt
 *  (the one that just failed).  The jitter is a pure function of the
 *  cell seed and attempt number, so retry schedules are reproducible
 *  run to run. */
void
retrySleep(std::uint64_t base_ms, std::uint64_t seed, unsigned attempt)
{
    if (base_ms == 0)
        return;
    const unsigned shift = std::min(attempt - 1, 10u);
    const std::uint64_t capped =
        std::min<std::uint64_t>(base_ms << shift, 1000);
    const std::uint64_t jitter =
        hashMix64(seed ^ (0xBAC0FFull + attempt)) % (capped / 2 + 1);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(capped + jitter));
}

} // namespace

SweepResult
SweepRunner::run(const SweepGrid &grid, const SweepOptions &options) const
{
    CSR_TRACE_SPAN("sweep", "SweepRunner::run");
    const std::vector<SweepCell> cells = grid.expand();
    if (cells.empty())
        throw ConfigError("sweep grid expands to zero cells");
    if (options.maxAttempts == 0)
        throw ConfigError("sweep maxAttempts must be >= 1");

    WallTimer total;
    ThreadPool pool(jobs_);

    // Per-cell outcome slots, compacted into the result afterwards.
    enum class Outcome { Pending, Ok, Failed };
    struct Slot
    {
        Outcome outcome = Outcome::Pending;
        SweepCellResult result;
        CellFailure failure;
    };
    std::vector<Slot> slots(cells.size());

    // Checkpoint: restore completed cells, then (re)open the journal.
    // A journal without a valid header (missing file, or only a torn
    // first line) is started from scratch.
    JsonlWriter journal;
    std::size_t resumed = 0;
    if (!options.checkpointPath.empty()) {
        SweepCheckpointState restored;
        if (options.resume)
            restored =
                loadSweepCheckpoint(options.checkpointPath, cells);
        journal.open(options.checkpointPath,
                     /*truncate=*/!restored.headerValid);
        if (!restored.headerValid)
            journal.appendLine(checkpointHeaderLine(
                gridFingerprint(cells), cells.size()));
        // Only successes are final: a journaled failure means the
        // cell never produced a result, so resume re-runs it (e.g.
        // after the transient cause -- a full disk, an injected
        // fault -- has gone away).  Its new outcome is journaled
        // again, and the loader lets the later line win.
        for (auto &[index, res] : restored.results) {
            slots[index].outcome = Outcome::Ok;
            slots[index].result = std::move(res);
        }
        resumed = restored.results.size();
    }

    // Setup covers only cells that still have to run -- resuming a
    // finished sweep rebuilds nothing.
    std::vector<BenchmarkId> pending_benchmarks;
    std::vector<std::string> pending_trace_files;
    std::vector<StudyKey> study_keys;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (slots[i].outcome != Outcome::Pending)
            continue;
        if (cells[i].traceFile.empty())
            pending_benchmarks.push_back(cells[i].benchmark);
        else
            pending_trace_files.push_back(cells[i].traceFile);
        const StudyKey key = studyKeyOf(cells[i]);
        if (std::find(study_keys.begin(), study_keys.end(), key) ==
            study_keys.end())
            study_keys.push_back(key);
    }

    // Setup phase 1: one sampled trace per workload source --
    // synthesized per benchmark, decoded per .csrt file.
    const TraceMap traces =
        buildTracesWith(pool, pending_benchmarks, grid.scale);
    const FileTraceMap file_traces = buildFileTracesWith(
        pool, pending_trace_files, TraceSimConfig{}.blockBytes);

    // Setup phase 2: one TraceStudy (LRU replay + miss profile) per
    // unique (benchmark, geometry).  Cells only read these afterward.
    std::vector<std::shared_ptr<const TraceStudy>> built(
        study_keys.size());
    parallelFor(pool, study_keys.size(), [&](std::size_t i) {
        const auto &[benchmark, trace_file, l2_bytes, assoc] =
            study_keys[i];
        TraceSimConfig config;
        config.l2Bytes = l2_bytes;
        config.l2Assoc = assoc;
        config.validateEveryRefs = options.validateEveryRefs;
        const SampledTrace &trace = trace_file.empty()
                                        ? *traces.at(benchmark)
                                        : *file_traces.at(trace_file);
        built[i] = std::make_shared<const TraceStudy>(trace, config);
    });
    std::map<StudyKey, std::shared_ptr<const TraceStudy>> studies;
    for (std::size_t i = 0; i < study_keys.size(); ++i)
        studies.emplace(study_keys[i], std::move(built[i]));

    SweepResult result;
    result.jobs = jobs_;
    result.gridCells = cells.size();
    result.resumedCells = resumed;
    result.setupSec = total.elapsedSec();

    // Every cell is independent: its own policy, cost model and
    // outcome slot, seeded purely from the cell's configuration hash.
    // The guard around each attempt is what keeps one bad cell from
    // taking the grid down: typed failures are recorded, retried up
    // to maxAttempts, and finally journaled as CellFailures.
    ParallelTiming timing;
    parallelFor(pool, cells.size(), [&](std::size_t i) {
        Slot &slot = slots[i];
        if (slot.outcome != Outcome::Pending)
            return; // restored from the checkpoint
        WallTimer task_timer;
        const SweepCell &cell = cells[i];
        CSR_TRACE_SPAN_DYN("sweep", cell.label());
        const std::uint64_t seed = cell.hash();

        std::string fail_kind, fail_message;
        unsigned attempt = 0;
        while (slot.outcome == Outcome::Pending) {
            ++attempt;
            try {
                // Fresh fault-injection scope per attempt, so a
                // retried cell draws new (still deterministic)
                // decisions.  The shared setup above runs outside
                // any scope and can never be injected into.
                FaultInjector::Scope scope(hashMix64(seed ^ attempt));
                if (options.cellProbe)
                    options.cellProbe(cell, attempt);

                const TraceStudy &study =
                    *studies.at(studyKeyOf(cell));
                const SampledTrace &trace =
                    cell.traceFile.empty()
                        ? *traces.at(cell.benchmark)
                        : *file_traces.at(cell.traceFile);

                PolicyParams params;
                params.etdAliasBits = cell.etdAliasBits;
                params.depreciationFactor = cell.depreciationFactor;
                params.seed = seed;

                const RandomTwoCost random(cell.ratio, cell.haf,
                                           cell.mappingHash());
                const FirstTouchTwoCost first_touch(
                    cell.ratio, trace.homeOf, trace.sampledProc);
                const CostModel &model =
                    cell.mapping == CostMapping::Random
                        ? static_cast<const CostModel &>(random)
                        : static_cast<const CostModel &>(first_touch);

                const TraceSimResult sim =
                    study.run(cell.policy, model, params);
                const double lru_cost = study.lruCost(model);

                SweepCellResult &out = slot.result;
                out.cell = cell;
                out.index = i;
                out.seed = seed;
                out.sampledRefs = sim.sampledRefs;
                out.l2Hits = sim.l2Hits;
                out.l2Misses = sim.l2Misses;
                out.aggregateCost = sim.aggregateCost;
                out.lruCost = lru_cost;
                out.savingsPct =
                    relativeCostSavings(lru_cost, sim.aggregateCost);
                slot.outcome = Outcome::Ok;
            } catch (const Error &e) {
                fail_kind = e.kind();
                fail_message = e.what();
            } catch (const std::exception &e) {
                fail_kind = "std::exception";
                fail_message = e.what();
            }
            if (slot.outcome == Outcome::Ok)
                break;
            CSR_TRACE_INSTANT("sweep", "cell-failure");
            if (attempt >= options.maxAttempts) {
                slot.failure.cell = cell;
                slot.failure.index = i;
                slot.failure.kind = fail_kind;
                slot.failure.message = fail_message;
                slot.failure.attempts = attempt;
                slot.outcome = Outcome::Failed;
                break;
            }
            retrySleep(options.retryBackoffMs, seed, attempt);
        }

        if (slot.outcome == Outcome::Ok) {
            slot.result.taskSec = task_timer.elapsedSec();
            timing.recordTask(slot.result.taskSec);
            if (journal.isOpen())
                journal.appendLine(checkpointCellLine(slot.result));
        } else if (journal.isOpen()) {
            journal.appendLine(checkpointFailureLine(slot.failure));
        }
    });

    // Compact the slots into grid order: successes first-class,
    // failures as the appendix.
    for (Slot &slot : slots) {
        if (slot.outcome == Outcome::Ok)
            result.cells.push_back(std::move(slot.result));
        else
            result.failures.push_back(std::move(slot.failure));
    }

    result.wallSec = total.elapsedSec();
    result.taskSecTotal = timing.taskSecTotal();
    result.taskSecMax = timing.taskSecMax();
    return result;
}

SweepGrid
presetGrid(const std::string &name)
{
    SweepGrid grid;
    if (name == "table1") {
        // The Table 1 workloads under every paper policy and both
        // mappings at the headline operating point (r=4, HAF=0.3).
        grid.mappings = {CostMapping::Random, CostMapping::FirstTouch};
        return grid;
    }
    if (name == "fig3") {
        grid.mappings = {CostMapping::Random};
        grid.ratios = {
            CostRatio::finite(2),  CostRatio::finite(4),
            CostRatio::finite(8),  CostRatio::finite(16),
            CostRatio::finite(32), CostRatio::makeInfinite(),
        };
        grid.hafs = {0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4,
                     0.5, 0.6,  0.7,  0.8, 0.9, 1.0};
        return grid;
    }
    if (name == "ablation-assoc") {
        grid.policies = {PolicyKind::Dcl};
        grid.mappings = {CostMapping::Random, CostMapping::FirstTouch};
        grid.assocs = {2, 4, 8};
        return grid;
    }
    if (name == "ablation-cachesize") {
        grid.policies = {PolicyKind::Dcl};
        grid.mappings = {CostMapping::FirstTouch};
        grid.l2Sizes = {4 * 1024, 8 * 1024, 16 * 1024, 64 * 1024,
                        256 * 1024};
        return grid;
    }
    if (name == "ablation-depreciation") {
        grid.policies = {PolicyKind::Bcl, PolicyKind::Dcl};
        grid.mappings = {CostMapping::FirstTouch};
        grid.depreciations = {0.5, 1.0, 2.0, 4.0};
        return grid;
    }
    if (name == "ablation-etd") {
        grid.policies = {PolicyKind::Dcl, PolicyKind::Acl};
        grid.mappings = {CostMapping::FirstTouch};
        grid.aliasBits = {0, 8, 4, 2};
        return grid;
    }
    if (name == "smoke") {
        grid.benchmarks = {BenchmarkId::Lu};
        grid.policies = {PolicyKind::Dcl};
        grid.scale = WorkloadScale::Test;
        return grid;
    }
    throw ConfigError("unknown sweep preset '" + name +
                      "' (table1|fig3|ablation-assoc|"
                      "ablation-cachesize|ablation-depreciation|"
                      "ablation-etd|smoke)");
}

SweepGrid
parseGridSpec(const std::string &spec)
{
    if (spec.find('=') == std::string::npos)
        return presetGrid(spec);

    SweepGrid grid;
    for (const std::string &field : splitList(spec, ';')) {
        if (field.empty())
            continue;
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            throw ConfigError("malformed grid field '" + field +
                              "' (want key=v1,v2,...)");
        const std::string key = field.substr(0, eq);
        const std::vector<std::string> values =
            splitList(field.substr(eq + 1), ',');
        if (values.empty() || values.front().empty())
            throw ConfigError("empty value list for grid key '" + key +
                              "'");

        if (key == "benchmarks") {
            grid.benchmarks.clear();
            for (const auto &v : values)
                grid.benchmarks.push_back(parseBenchmark(v));
        } else if (key == "policies") {
            grid.policies.clear();
            for (const auto &v : values)
                grid.policies.push_back(requirePolicyKind(v));
        } else if (key == "mappings") {
            grid.mappings.clear();
            for (const auto &v : values)
                grid.mappings.push_back(parseCostMapping(v));
        } else if (key == "ratios") {
            grid.ratios.clear();
            for (const auto &v : values) {
                if (lowered(v) == "inf") {
                    grid.ratios.push_back(CostRatio::makeInfinite());
                } else {
                    const double ratio = parseNumberFor(key, v);
                    if (ratio <= 0.0)
                        throw ConfigError(
                            "cost ratio " + std::to_string(ratio) +
                            " must be positive");
                    grid.ratios.push_back(CostRatio::finite(ratio));
                }
            }
        } else if (key == "hafs") {
            grid.hafs.clear();
            for (const auto &v : values) {
                const double haf = parseNumberFor(key, v);
                if (haf < 0.0 || haf > 1.0)
                    throw ConfigError("HAF " + std::to_string(haf) +
                                      " out of [0,1]");
                grid.hafs.push_back(haf);
            }
        } else if (key == "l2") {
            grid.l2Sizes.clear();
            for (const auto &v : values)
                grid.l2Sizes.push_back(parseUIntFor(key, v));
        } else if (key == "assocs") {
            grid.assocs.clear();
            for (const auto &v : values)
                grid.assocs.push_back(
                    static_cast<std::uint32_t>(parseUIntFor(key, v)));
        } else if (key == "alias-bits") {
            grid.aliasBits.clear();
            for (const auto &v : values)
                grid.aliasBits.push_back(
                    static_cast<unsigned>(parseUIntFor(key, v)));
        } else if (key == "depreciations") {
            grid.depreciations.clear();
            for (const auto &v : values)
                grid.depreciations.push_back(parseNumberFor(key, v));
        } else if (key == "traces") {
            grid.traceFiles.clear();
            for (const auto &v : values)
                grid.traceFiles.push_back(v);
        } else if (key == "scale") {
            grid.scale = parseScaleName(values.front());
        } else {
            throw ConfigError("unknown grid key '" + key + "'");
        }
    }
    return grid;
}

} // namespace csr
