/**
 * @file
 * Reproduction of Table 2: relative cost savings over LRU with the
 * first-touch cost mapping (local blocks cost 1, remote blocks cost
 * r), as r sweeps 2..32 (plus the infinite-ratio bound).
 *
 * Expected shape (paper): savings much less rosy than the random
 * mapping at the same HAF; LU is the pathological case (negative for
 * GD/BCL/DCL, small positive for ACL); ACL is never much worse than
 * LRU anywhere; savings grow with r.
 */

#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceStudy.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Table 2: relative cost savings, first-touch cost "
                  "mapping", scale);

    const std::vector<CostRatio> ratios = {
        CostRatio::finite(2),  CostRatio::finite(4),
        CostRatio::finite(8),  CostRatio::finite(16),
        CostRatio::finite(32), CostRatio::makeInfinite(),
    };

    TextTable table("Table 2 -- relative cost savings over LRU (%)");
    std::vector<std::string> header = {"Benchmark", "Algorithm"};
    for (const CostRatio &ratio : ratios)
        header.push_back(ratio.label());
    table.setHeader(header);

    for (BenchmarkId id : paperBenchmarks()) {
        const SampledTrace trace = bench::sampledTrace(id, scale);
        const TraceStudy study(trace);
        bool first = true;
        for (PolicyKind kind : paperPolicies()) {
            std::vector<std::string> row = {
                first ? benchmarkName(id) : std::string(),
                policyKindName(kind)};
            first = false;
            for (const CostRatio &ratio : ratios) {
                const FirstTouchTwoCost model(ratio, trace.homeOf,
                                              trace.sampledProc);
                row.push_back(
                    TextTable::num(study.savingsPct(kind, model), 2));
            }
            table.addRow(row);
        }
        table.addSeparator();
    }
    table.print(std::cout);
    return 0;
}
