/**
 * @file
 * Extension (paper Section 7): interaction with dynamic page
 * migration.
 *
 * An idealized migration policy re-homes the hottest remote blocks to
 * the accessing node; the remaining remote accesses are the only ones
 * cost-sensitive replacement can still save.  The bench sweeps the
 * migration hotness threshold (infinity = no migration = Table 2's
 * first-touch setting) and reports the residual remote fraction and
 * DCL's savings, showing how the two mechanisms compete for the same
 * remote misses.
 */

#include <iostream>
#include <limits>
#include <vector>

#include "BenchCommon.h"
#include "cost/MigrationCost.h"
#include "sim/TraceStudy.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Extension: page migration vs cost-sensitive "
                  "replacement (DCL, r=4)", scale);

    // Hotness thresholds: migrate blocks with >= N sampled accesses.
    const std::vector<std::uint64_t> thresholds = {
        std::numeric_limits<std::uint64_t>::max(), // no migration
        256, 64, 16,
    };

    TextTable table("DCL savings over LRU (%) and residual remote "
                    "fraction, by migration threshold");
    std::vector<std::string> header = {"Benchmark"};
    for (std::uint64_t threshold : thresholds) {
        header.push_back(
            threshold == std::numeric_limits<std::uint64_t>::max()
                ? "none"
                : ">=" + std::to_string(threshold));
    }
    table.setHeader(header);

    for (BenchmarkId id : paperBenchmarks()) {
        const SampledTrace trace = bench::sampledTrace(id, scale);
        const TraceStudy study(trace);
        std::vector<std::string> row = {benchmarkName(id)};
        for (std::uint64_t threshold : thresholds) {
            MigrationOutcome outcome;
            const TableCost model = buildMigratedCostModel(
                trace, CostRatio::finite(4), threshold, &outcome);
            const double savings =
                study.savingsPct(PolicyKind::Dcl, model);
            row.push_back(TextTable::num(savings, 2) + " (rem " +
                          TextTable::num(
                              100.0 * outcome.residualRemoteFraction,
                              1) +
                          "%)");
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(the more migration removes, the less is left for "
                 "replacement to save --\n the mechanisms are "
                 "complementary consumers of remote-miss cost)\n";
    return 0;
}
