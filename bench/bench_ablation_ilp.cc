/**
 * @file
 * Ablation D: processor memory-level parallelism.
 *
 * The execution-time benefit of latency-sensitive replacement depends
 * on how much miss latency the core can hide.  Sweeps the MSHR count
 * and the store-buffer depth for the DCL policy (500 MHz, Raytrace
 * and Ocean) to expose the regimes: a fully serialized core converts
 * aggregate-latency savings directly into time; a deeply overlapped
 * one hides them.
 */

#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "numa/NumaSystem.h"

using namespace csr;

namespace
{

struct IlpPoint
{
    std::uint32_t mshrs;
    std::uint32_t storeBuffer;
};

} // namespace

int
main()
{
    const WorkloadScale scale = bench::scaleFromEnv();
    bench::banner("Ablation: MLP vs execution-time savings (DCL, "
                  "500MHz)", scale);

    const std::vector<IlpPoint> points = {
        {1, 1}, {4, 1}, {8, 1}, {8, 8},
    };

    TextTable table("DCL execution-time reduction over LRU (%)");
    std::vector<std::string> header = {"Benchmark"};
    for (const IlpPoint &point : points)
        header.push_back("mshr=" + std::to_string(point.mshrs) +
                         ",sb=" + std::to_string(point.storeBuffer));
    table.setHeader(header);

    for (BenchmarkId id : {BenchmarkId::Raytrace, BenchmarkId::Ocean}) {
        auto workload = makeWorkload(id, scale, /*numa_sized=*/true);
        std::vector<std::string> row = {benchmarkName(id)};
        for (const IlpPoint &point : points) {
            NumaConfig config;
            config.cycleNs = 2;
            config.mshrs = point.mshrs;
            config.storeBufferDepth = point.storeBuffer;
            config.policy = PolicyKind::Lru;
            NumaSystem lru(config, *workload);
            const Tick lru_time = lru.run().execTimeNs;
            config.policy = PolicyKind::Dcl;
            NumaSystem dcl(config, *workload);
            const Tick dcl_time = dcl.run().execTimeNs;
            row.push_back(TextTable::num(
                100.0 *
                    (static_cast<double>(lru_time) -
                     static_cast<double>(dcl_time)) /
                    static_cast<double>(lru_time),
                2));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
