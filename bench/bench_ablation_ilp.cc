/**
 * @file
 * Ablation D: processor memory-level parallelism.
 *
 * The execution-time benefit of latency-sensitive replacement depends
 * on how much miss latency the core can hide.  Sweeps the MSHR count
 * and the store-buffer depth for the DCL policy (500 MHz, Raytrace
 * and Ocean) to expose the regimes: a fully serialized core converts
 * aggregate-latency savings directly into time; a deeply overlapped
 * one hides them.
 *
 * Each (benchmark, MLP point) is an independent pair of NUMA
 * simulations, fanned out across a ThreadPool ($CSR_JOBS workers);
 * every task builds its own deterministic workload, so results do not
 * depend on the worker count.
 */

#include <future>
#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "numa/NumaSystem.h"

using namespace csr;

namespace
{

struct IlpPoint
{
    std::uint32_t mshrs;
    std::uint32_t storeBuffer;
};

/** DCL's execution-time reduction over LRU at one MLP point. */
double
timeReductionPct(BenchmarkId id, WorkloadScale scale,
                 const IlpPoint &point)
{
    NumaConfig config;
    config.cycleNs = 2;
    config.mshrs = point.mshrs;
    config.storeBufferDepth = point.storeBuffer;

    config.policy = PolicyKind::Lru;
    auto lru_workload = makeWorkload(id, scale, /*numa_sized=*/true);
    NumaSystem lru(config, *lru_workload);
    const Tick lru_time = lru.run().execTimeNs;

    config.policy = PolicyKind::Dcl;
    auto dcl_workload = makeWorkload(id, scale, /*numa_sized=*/true);
    NumaSystem dcl(config, *dcl_workload);
    const Tick dcl_time = dcl.run().execTimeNs;

    return 100.0 *
           (static_cast<double>(lru_time) -
            static_cast<double>(dcl_time)) /
           static_cast<double>(lru_time);
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Ablation: MLP vs execution-time savings (DCL, "
                  "500MHz)", scale);

    const std::vector<IlpPoint> points = {
        {1, 1}, {4, 1}, {8, 1}, {8, 8},
    };
    const std::vector<BenchmarkId> benchmarks = {
        BenchmarkId::Raytrace, BenchmarkId::Ocean,
    };

    ThreadPool pool(bench::jobsFrom(args));
    std::vector<std::future<double>> futures;
    for (BenchmarkId id : benchmarks) {
        for (const IlpPoint &point : points) {
            futures.push_back(pool.submit([id, scale, point] {
                return timeReductionPct(id, scale, point);
            }));
        }
    }

    TextTable table("DCL execution-time reduction over LRU (%)");
    std::vector<std::string> header = {"Benchmark"};
    for (const IlpPoint &point : points)
        header.push_back("mshr=" + std::to_string(point.mshrs) +
                         ",sb=" + std::to_string(point.storeBuffer));
    table.setHeader(header);

    std::size_t next = 0;
    for (BenchmarkId id : benchmarks) {
        std::vector<std::string> row = {benchmarkName(id)};
        for (std::size_t i = 0; i < points.size(); ++i)
            row.push_back(TextTable::num(futures[next++].get(), 2));
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
