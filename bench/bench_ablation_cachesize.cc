/**
 * @file
 * Ablation E: L2 capacity.
 *
 * Section 3.1 scanned 2 KB..512 KB before settling on 16 KB (primary
 * working sets fit, secondary do not).  This bench sweeps the L2 size
 * at fixed 4-way associativity for DCL under the first-touch mapping
 * at r=4: savings should collapse once the secondary working set fits
 * (nothing left to reserve) and shrink at tiny sizes (reuse moves
 * beyond the reservation band).
 */

#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceStudy.h"

using namespace csr;

int
main()
{
    const WorkloadScale scale = bench::scaleFromEnv();
    bench::banner("Ablation: L2 capacity (DCL, first touch, r=4)",
                  scale);

    const std::vector<std::uint64_t> sizes = {
        4 * 1024, 8 * 1024, 16 * 1024, 64 * 1024, 256 * 1024,
    };

    TextTable table("DCL savings over LRU (%) and LRU L2 miss rate");
    std::vector<std::string> header = {"Benchmark"};
    for (std::uint64_t size : sizes)
        header.push_back(std::to_string(size / 1024) + "KB");
    table.setHeader(header);

    for (BenchmarkId id : paperBenchmarks()) {
        const SampledTrace trace = bench::sampledTrace(id, scale);
        std::vector<std::string> row = {benchmarkName(id)};
        for (std::uint64_t size : sizes) {
            TraceSimConfig config;
            config.l2Bytes = size;
            const TraceStudy study(trace, config);
            const FirstTouchTwoCost model(CostRatio::finite(4),
                                          trace.homeOf,
                                          trace.sampledProc);
            row.push_back(TextTable::num(
                study.savingsPct(PolicyKind::Dcl, model), 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
