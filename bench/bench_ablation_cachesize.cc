/**
 * @file
 * Ablation E: L2 capacity.
 *
 * Section 3.1 scanned 2 KB..512 KB before settling on 16 KB (primary
 * working sets fit, secondary do not).  This bench sweeps the L2 size
 * at fixed 4-way associativity for DCL under the first-touch mapping
 * at r=4, on the parallel sweep harness: savings should collapse once
 * the secondary working set fits (nothing left to reserve) and shrink
 * at tiny sizes (reuse moves beyond the reservation band).
 */

#include <iostream>

#include "BenchCommon.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Ablation: L2 capacity (DCL, first touch, r=4)",
                  scale);

    const SweepResult sweep =
        bench::runSweep(presetGrid("ablation-cachesize"), args);

    TextTable table = bench::pivot(
        "DCL savings over LRU (%)", "Benchmark", sweep.cells,
        [](const SweepCellResult &res) {
            return benchmarkName(res.cell.benchmark);
        },
        [](const SweepCellResult &res) {
            return std::to_string(res.cell.l2Bytes / 1024) + "KB";
        },
        bench::savingsOf);
    table.print(std::cout);
    bench::printSweepTiming(sweep);
    return 0;
}
