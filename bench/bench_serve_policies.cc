/**
 * @file
 * Serving-layer policy comparison: the paper's replacement policies
 * driving the online csr::serve cache against a bimodal-latency
 * backend.
 *
 * Each policy serves the same deterministic Zipfian op stream from
 * the same seed on a fresh CacheService; the figure of merit is the
 * *aggregate miss cost* (sum of measured backend fetch latencies),
 * the online analogue of the paper's cost metric.  Cost-sensitive
 * policies (GD/BCL/DCL/ACL) trade a little hit ratio for misses that
 * are cheap to refetch, so they beat LRU on cost while losing on raw
 * hit counts -- the same trade the trace studies show offline.
 *
 * Also reports wall-clock throughput and op-latency percentiles per
 * policy, and dumps everything as one JSON document with --json
 * (BENCH_serve.json by default) for CI to archive.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "serve/CacheService.h"
#include "serve/LoadHarness.h"
#include "serve/SyntheticBackend.h"

using namespace csr;
using namespace csr::serve;

namespace
{

std::uint64_t
opsForScale(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::Test:
        return 60'000;
      case WorkloadScale::Small:
        return 400'000;
      case WorkloadScale::Full:
        return 4'000'000;
    }
    return 400'000;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args =
        bench::benchArgs(argc, argv, {"ops", "keys", "workers"});
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Serving mode: online miss cost by policy "
                  "(Zipfian keys, bimodal backend)", scale);

    // The pressure point: keyspace well above cache capacity, 15% of
    // keys on a 16x slower backend tier.  Cost-sensitive policies
    // can then buy cost savings with slightly worse hit ratios.
    ServeConfig serve_config;
    serve_config.shards = 4;
    serve_config.shardBytes = 64 * 1024;
    serve_config.policyParams.seed = args.seed(7);

    SyntheticBackendConfig backend_config;
    backend_config.seed = args.seed(7);
    backend_config.slowFraction = 0.15;
    backend_config.slowNs = 32'000.0;

    HarnessConfig harness_config;
    harness_config.ops = args.getUInt("ops", opsForScale(scale));
    harness_config.workers =
        static_cast<unsigned>(args.getUInt("workers", 4));
    harness_config.seed = args.seed(7);
    harness_config.mix.numKeys = args.getUInt("keys", 1 << 18);

    const std::vector<PolicyKind> policies = {
        PolicyKind::Lru, PolicyKind::GreedyDual, PolicyKind::Bcl,
        PolicyKind::Dcl, PolicyKind::Acl,
    };

    TextTable table("aggregate miss cost by policy, " +
                    harness_config.mix.describe());
    table.setHeader({"Policy", "Hit %", "Misses", "Miss cost (ms)",
                     "vs LRU (%)", "QPS", "p50 (us)", "p90 (us)",
                     "p99 (us)"});

    struct PolicyRun
    {
        std::string name;
        HarnessResult result;
    };
    std::vector<PolicyRun> runs;
    double lru_cost_ns = 0.0;

    for (PolicyKind kind : policies) {
        ServeConfig config = serve_config;
        config.policy = kind;
        SyntheticBackend backend(backend_config);
        CacheService service(config, backend);
        HarnessResult result = runLoad(service, harness_config);
        if (kind == PolicyKind::Lru)
            lru_cost_ns = result.totals.missCostNs;
        const double savings =
            lru_cost_ns > 0.0
                ? 100.0 * (lru_cost_ns - result.totals.missCostNs) /
                      lru_cost_ns
                : 0.0;
        table.addRow({
            service.policyName(),
            TextTable::num(result.totals.hitRatio() * 100.0),
            TextTable::count(result.totals.misses),
            TextTable::num(result.totals.missCostNs / 1e6, 3),
            TextTable::num(savings),
            TextTable::num(result.qps, 0),
            TextTable::num(result.opLatencyNs.percentile(0.50) / 1e3),
            TextTable::num(result.opLatencyNs.percentile(0.90) / 1e3),
            TextTable::num(result.opLatencyNs.percentile(0.99) / 1e3),
        });
        runs.push_back({service.policyName(), std::move(result)});
    }
    table.print(std::cout);
    std::cout << "(positive 'vs LRU' = the policy refetches cheaper "
                 "misses than LRU at the same capacity)\n";

    const std::string json_path =
        args.has("json") ? args.jsonPath() : "BENCH_serve.json";
    std::ofstream os(json_path);
    if (os) {
        os << "{\n  \"ops\": " << harness_config.ops
           << ",\n  \"workload\": \"" << harness_config.mix.describe()
           << "\",\n  \"lruMissCostNs\": " << lru_cost_ns
           << ",\n  \"policies\": [\n";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            os << "    ";
            runs[i].result.writeJsonObject(
                os, runs[i].name, harness_config.mix.describe(),
                /*indent=*/4);
            os << (i + 1 < runs.size() ? ",\n" : "\n");
        }
        os << "  ]\n}\n";
        std::cerr << "### wrote JSON to " << json_path << "\n";
    } else {
        std::cerr << "### cannot write " << json_path << "\n";
    }

    if (!args.metricsPath().empty()) {
        MetricRegistry metrics;
        for (const PolicyRun &run : runs) {
            metrics.stat("serve.miss_cost_ns." + run.name)
                .add(run.result.totals.missCostNs);
            metrics.mergeHistogram("serve.op_latency_ns." + run.name,
                                   run.result.opLatencyNs);
        }
        bench::maybeWriteMetrics(metrics, args.metricsPath());
    }
    return 0;
}
