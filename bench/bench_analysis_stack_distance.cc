/**
 * @file
 * Analysis: per-set stack-distance profiles by cost class.
 *
 * Not a paper table -- this is the diagnostic behind all of them.
 * Reservations can only save blocks whose reuse lands at per-set
 * stack distances just past the associativity (the "reservation
 * band", s+1 .. ~3s for a 4-way cache).  The table shows, per
 * benchmark and cost class, the access mass at distances <= 4 (LRU
 * hits), in the band, deeper, and cold -- which predicts where the
 * Figure 3 / Table 2 savings come from (remote band mass) and where
 * the losses come from (local band mass sacrificed + cold remote
 * blocks pointlessly reserved).
 */

#include <iostream>

#include "BenchCommon.h"
#include "trace/StackDistance.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Analysis: per-set stack distances by cost class "
                  "(16KB 4-way L2 geometry)", scale);

    const CacheGeometry geom(16 * 1024, 4, 64);

    TextTable table("access mass (%) by per-set stack distance");
    table.setHeader({"Benchmark", "Class", "1-4 (LRU hit)",
                     "5-12 (band)", "13-64", "cold/deep"});

    for (BenchmarkId id : paperBenchmarks()) {
        const SampledTrace trace = bench::sampledTrace(id, scale);
        const StackDistanceReport report =
            profileStackDistances(trace, geom);
        bool first = true;
        for (const auto *profile : {&report.local, &report.remote}) {
            const double hits = profile->hitFraction(4);
            const double band = profile->fractionInBand(5, 12);
            const double deep = profile->fractionInBand(13, 64);
            const double cold =
                profile->total
                    ? 1.0 - hits - band - deep
                    : 0.0;
            table.addRow({first ? benchmarkName(id) : std::string(),
                          first ? "local" : "remote",
                          TextTable::num(100 * hits, 1),
                          TextTable::num(100 * band, 1),
                          TextTable::num(100 * deep, 1),
                          TextTable::num(100 * cold, 1)});
            first = false;
        }
        table.addSeparator();
    }
    table.print(std::cout);
    std::cout << "\n(remote band mass is the raw material of "
                 "reservations; local band mass is what failed "
                 "reservations sacrifice)\n";
    return 0;
}
