/**
 * @file
 * Reproduction of Table 1: benchmark characteristics.
 *
 * Paper values (full scale): Barnes 64K bodies / 11.3 MB / 34.2M refs
 * / 44.8% remote; LU 512x512 / 2.0 MB / 12.7M / 19.1%; Ocean 258x258
 * / 15.0 MB / 15.6M / 7.4%; Raytrace car / 32 MB / 14.0M / 29.6%.
 * Our generators run scaled problem sizes; the remote-access fraction
 * is the calibrated quantity (it drives the first-touch cost study).
 *
 * The four traces are built in parallel through the sweep engine's
 * setup phase ($CSR_JOBS workers).
 */

#include <iostream>

#include "BenchCommon.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Table 1: benchmark characteristics", scale);

    const SweepRunner runner(bench::jobsFrom(args));
    const SweepRunner::TraceMap traces =
        runner.buildTraces(paperBenchmarks(), scale);

    TextTable table("Table 1 (measured at this scale; paper remote "
                    "fractions: 44.8 / 19.1 / 7.4 / 29.6 %)");
    table.setHeader({"Benchmark", "# proc", "Mem usage (MB)",
                     "Touched (MB)", "Refs by sampled proc",
                     "Remote access fraction (%)"});

    for (BenchmarkId id : paperBenchmarks()) {
        auto workload = makeWorkload(id, scale);
        const SampledTrace &trace = *traces.at(id);
        table.addRow({
            benchmarkName(id),
            std::to_string(workload->numProcs()),
            TextTable::num(static_cast<double>(workload->memoryBytes()) /
                               (1024.0 * 1024.0), 1),
            TextTable::num(static_cast<double>(trace.touchedBytes) /
                               (1024.0 * 1024.0), 1),
            TextTable::count(trace.sampledRefs),
            TextTable::num(100.0 * trace.remoteAccessFraction, 1),
        });
    }
    table.print(std::cout);
    return 0;
}
