/**
 * @file
 * Ablation B: ETD tag aliasing.
 *
 * Section 2.4/4.3: the ETD can store only a few low-order tag bits;
 * false matches make depreciation more aggressive but cannot affect
 * correctness.  Sweeps alias width {full, 8, 4, 2 bits} for DCL and
 * ACL under the first-touch mapping at r=4, on the parallel sweep
 * harness.  Expected: the effect is marginal (the paper measured
 * execution-time deltas under 2%).
 */

#include <iostream>

#include "BenchCommon.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Ablation: ETD tag aliasing (first touch, r=4)",
                  scale);

    const SweepResult sweep =
        bench::runSweep(presetGrid("ablation-etd"), args);

    for (PolicyKind kind : {PolicyKind::Dcl, PolicyKind::Acl}) {
        const auto pane = bench::filterCells(
            sweep, [&](const SweepCellResult &res) {
                return res.cell.policy == kind;
            });
        TextTable table = bench::pivot(
            policyKindName(kind) +
                " -- savings over LRU (%) by ETD tag width",
            "Benchmark", pane,
            [](const SweepCellResult &res) {
                return benchmarkName(res.cell.benchmark);
            },
            [](const SweepCellResult &res) {
                return res.cell.etdAliasBits == 0
                           ? std::string("full")
                           : std::to_string(res.cell.etdAliasBits) +
                                 "b";
            },
            bench::savingsOf);
        table.print(std::cout);
        std::cout << "\n";
    }
    bench::printSweepTiming(sweep);
    return 0;
}
