/**
 * @file
 * Ablation B: ETD tag aliasing.
 *
 * Section 2.4/4.3: the ETD can store only a few low-order tag bits;
 * false matches make depreciation more aggressive but cannot affect
 * correctness.  Sweeps alias width {full, 8, 4, 2 bits} for DCL and
 * ACL under the first-touch mapping at r=4.  Expected: the effect is
 * marginal (the paper measured execution-time deltas under 2%).
 */

#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceStudy.h"

using namespace csr;

int
main()
{
    const WorkloadScale scale = bench::scaleFromEnv();
    bench::banner("Ablation: ETD tag aliasing (first touch, r=4)",
                  scale);

    const std::vector<unsigned> widths = {0, 8, 4, 2};

    for (PolicyKind kind : {PolicyKind::Dcl, PolicyKind::Acl}) {
        TextTable table(policyKindName(kind) +
                        " -- savings over LRU (%) by ETD tag width");
        std::vector<std::string> header = {"Benchmark"};
        for (unsigned width : widths)
            header.push_back(width == 0 ? "full"
                                        : std::to_string(width) + "b");
        table.setHeader(header);

        for (BenchmarkId id : paperBenchmarks()) {
            const SampledTrace trace = bench::sampledTrace(id, scale);
            const TraceStudy study(trace);
            const FirstTouchTwoCost model(CostRatio::finite(4),
                                          trace.homeOf,
                                          trace.sampledProc);
            std::vector<std::string> row = {benchmarkName(id)};
            for (unsigned width : widths) {
                PolicyParams params;
                params.etdAliasBits = width;
                row.push_back(TextTable::num(
                    study.savingsPct(kind, model, params), 2));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
