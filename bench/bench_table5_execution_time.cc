/**
 * @file
 * Reproduction of Table 5: reduction of execution time over LRU when
 * the L2 replacement policy minimizes predicted miss *latency*
 * (Section 4), for GD / BCL / DCL / ACL plus DCL/ACL with 4-bit ETD
 * tag aliasing, at 500 MHz and 1 GHz.
 *
 * Also echoes the Table 4 system configuration it runs under.
 *
 * Expected shape (paper): DCL gives reliable improvements everywhere
 * and beats GD/BCL clearly on the irregular applications; LU's
 * GD/BCL go slightly negative while DCL/ACL stay positive; ACL sits
 * slightly below DCL on most apps; ETD tag aliasing is near-neutral.
 */

#include <iostream>
#include <utility>
#include <vector>

#include "BenchCommon.h"
#include "numa/NumaSystem.h"
#include "util/CliArgs.h"

using namespace csr;

namespace
{

void
printTable4(const NumaConfig &config)
{
    TextTable table("Table 4: baseline system configuration");
    table.setHeader({"Parameter", "Value"});
    table.addRow({"Nodes", std::to_string(config.numNodes()) + " (" +
                               std::to_string(config.meshCols) + "x" +
                               std::to_string(config.meshRows) +
                               " mesh)"});
    table.addRow({"Active list",
                  std::to_string(config.activeList) + " entries"});
    table.addRow({"L1", "4KB direct-mapped, 64B blocks, 1-cycle"});
    table.addRow({"L2", "16KB 4-way, 8 MSHRs, 64B blocks, 6-cycle"});
    table.addRow({"Main memory",
                  std::to_string(config.memBanks) + "-way interleaved, " +
                      std::to_string(config.memAccessNs) + " ns"});
    table.addRow({"Flit delay", std::to_string(config.flitNs) + " ns"});
    table.addRow({"Coherence", config.replacementHints
                                   ? "MESI with replacement hints"
                                   : "MESI without replacement hints"});
    table.print(std::cout);
    std::cout << "\n";
}

struct Variant
{
    std::string label;
    PolicyKind kind;
    unsigned aliasBits;
};

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Table 5: execution-time reduction over LRU (%)",
                  scale);
    printTable4(NumaConfig{});

    const std::vector<Variant> variants = {
        {"GD", PolicyKind::GreedyDual, 0},
        {"BCL", PolicyKind::Bcl, 0},
        {"DCL", PolicyKind::Dcl, 0},
        {"ACL", PolicyKind::Acl, 0},
        {"DCL alias", PolicyKind::Dcl, 4},
        {"ACL alias", PolicyKind::Acl, 4},
    };

    MetricRegistry metrics;
    for (std::uint32_t cycle_ns : {2u, 1u}) {
        const std::string freq = cycle_ns == 2 ? "500MHz" : "1GHz";
        TextTable table(freq +
                        " processor -- execution time reduction (%)");
        std::vector<std::string> header = {"Benchmark",
                                           "LRU exec (ms)"};
        for (const Variant &variant : variants)
            header.push_back(variant.label);
        table.setHeader(header);

        // Per-benchmark miss-latency distributions for LRU vs DCL:
        // the paper's speedups come from shifting this distribution,
        // so show it next to the table of means.
        std::vector<std::pair<std::string, Histogram>> latencies;

        for (BenchmarkId id : paperBenchmarks()) {
            auto workload = makeWorkload(id, scale, /*numa_sized=*/true);

            NumaConfig config;
            config.cycleNs = cycle_ns;
            config.policy = PolicyKind::Lru;
            NumaSystem lru(config, *workload);
            const NumaResult lru_result = lru.run();
            const Tick lru_time = lru_result.execTimeNs;
            latencies.emplace_back(benchmarkName(id) + "/LRU",
                                   lru_result.missLatencyHist);

            std::vector<std::string> row = {
                benchmarkName(id),
                TextTable::num(static_cast<double>(lru_time) / 1e6, 3)};
            for (const Variant &variant : variants) {
                config.policy = variant.kind;
                config.policyParams.etdAliasBits = variant.aliasBits;
                NumaSystem sys(config, *workload);
                const NumaResult res = sys.run();
                const Tick t = res.execTimeNs;
                if (variant.kind == PolicyKind::Dcl &&
                    variant.aliasBits == 0) {
                    latencies.emplace_back(benchmarkName(id) + "/DCL",
                                           res.missLatencyHist);
                    metrics.mergeHistogram("table5." + freq + "." +
                                               benchmarkName(id) +
                                               ".miss_latency_ns",
                                           res.missLatencyHist);
                }
                row.push_back(TextTable::num(
                    100.0 *
                        (static_cast<double>(lru_time) -
                         static_cast<double>(t)) /
                        static_cast<double>(lru_time),
                    2));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";

        std::vector<std::pair<std::string, const Histogram *>> rows;
        for (const auto &[label, hist] : latencies)
            rows.emplace_back(label, &hist);
        bench::latencyHistogramTable(freq + " miss latency (ns)", rows)
            .print(std::cout);
        std::cout << "\n";
    }
    bench::maybeWriteMetrics(metrics, args.metricsPath());
    std::cout << "(paper, 500MHz DCL: Barnes 16.9, LU 3.5, Ocean 8.3, "
                 "Raytrace 7.2)\n";
    return 0;
}
