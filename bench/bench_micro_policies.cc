/**
 * @file
 * Microbenchmark (google-benchmark): per-access overhead of each
 * replacement policy implementation, to back the Section 5 claim
 * that the algorithms' work per access is trivial.  Measures the
 * CacheModel protocol (lookup + policy access + victim/fill) on the
 * paper's 16 KB 4-way geometry over a mixed-locality address stream.
 *
 * Besides the normal console output, the run is summarized into a
 * small JSON file (BENCH_micro.json by default, or --json <path>)
 * with per-policy ns/access and accesses/sec plus the total wall
 * clock, so CI can archive machine-readable numbers.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cache/CacheModel.h"
#include "cache/PolicyFactory.h"
#include "util/CliArgs.h"
#include "util/Random.h"

namespace
{

using namespace csr;

void
runPolicy(benchmark::State &state, PolicyKind kind)
{
    const CacheGeometry geom(16 * 1024, 4, 64);
    CacheModel cache(geom, makePolicy(kind, geom));
    Rng rng(42);

    // Pre-generate a mixed stream: hot set + streaming tail.
    std::vector<Addr> stream;
    stream.reserve(1 << 16);
    Addr cursor = 0;
    for (int i = 0; i < (1 << 16); ++i) {
        if (rng.nextBool(0.6))
            stream.push_back(rng.nextBelow(256) * 64);
        else
            stream.push_back((0x100000 + (cursor++ % 4096)) * 64);
    }
    Rng cost_rng(7);

    std::size_t i = 0;
    for (auto _ : state) {
        const Addr addr = stream[i++ & 0xFFFF];
        const std::uint32_t set = geom.setIndex(addr);
        const Addr tag = geom.tag(addr);
        const int hit_way = cache.access(set, tag);
        if (hit_way == kInvalidWay) {
            cache.fillVictimOrFree(
                set, tag, static_cast<Cost>(1 + cost_rng.nextBelow(8)));
        }
        benchmark::DoNotOptimize(hit_way);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Lru(benchmark::State &s) { runPolicy(s, PolicyKind::Lru); }
void BM_Gd(benchmark::State &s) { runPolicy(s, PolicyKind::GreedyDual); }
void BM_Bcl(benchmark::State &s) { runPolicy(s, PolicyKind::Bcl); }
void BM_Dcl(benchmark::State &s) { runPolicy(s, PolicyKind::Dcl); }
void BM_Acl(benchmark::State &s) { runPolicy(s, PolicyKind::Acl); }

BENCHMARK(BM_Lru);
BENCHMARK(BM_Gd);
BENCHMARK(BM_Bcl);
BENCHMARK(BM_Dcl);
BENCHMARK(BM_Acl);

/** Console reporter that also records one JSON row per benchmark. */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row
    {
        std::string name;
        std::int64_t iterations = 0;
        double nsPerAccess = 0.0;
        double accessesPerSec = 0.0;
    };

    std::vector<Row> rows;

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const auto &run : reports) {
            Row row;
            row.name = run.benchmark_name();
            row.iterations = run.iterations;
            if (run.iterations > 0 && run.real_accumulated_time > 0.0) {
                row.nsPerAccess = 1e9 * run.real_accumulated_time /
                                  static_cast<double>(run.iterations);
                row.accessesPerSec = static_cast<double>(run.iterations) /
                                     run.real_accumulated_time;
            }
            rows.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(reports);
    }
};

void
writeJson(const std::string &path, const JsonCaptureReporter &reporter,
          double wall_sec)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_micro_policies: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"wallSec\": %.6f,\n  \"benchmarks\": [\n",
                 wall_sec);
    for (std::size_t i = 0; i < reporter.rows.size(); ++i) {
        const auto &row = reporter.rows[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"iterations\": %lld, "
                     "\"nsPerAccess\": %.4f, \"accessesPerSec\": %.1f}%s\n",
                     row.name.c_str(),
                     static_cast<long long>(row.iterations),
                     row.nsPerAccess, row.accessesPerSec,
                     i + 1 < reporter.rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    // Lenient parse: the shared csr flags are consumed, every other
    // token (google-benchmark's --benchmark_* flags) is preserved
    // verbatim in positionals() for benchmark::Initialize.
    const csr::CliArgs cli = csr::CliArgs::lenient(argc, argv,
                                                   /*valued=*/{});
    const std::string json_path =
        cli.has("json") ? cli.jsonPath() : "BENCH_micro.json";

    std::vector<std::string> rest_storage = cli.positionals();
    std::vector<char *> rest = {argv[0]};
    for (std::string &token : rest_storage)
        rest.push_back(token.data());
    int filtered_argc = static_cast<int>(rest.size());

    benchmark::Initialize(&filtered_argc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, rest.data()))
        return 1;

    JsonCaptureReporter reporter;
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::RunSpecifiedBenchmarks(&reporter);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_sec =
        std::chrono::duration<double>(t1 - t0).count();

    writeJson(json_path, reporter, wall_sec);
    benchmark::Shutdown();
    return 0;
}
