/**
 * @file
 * Microbenchmark (google-benchmark): per-access overhead of each
 * replacement policy implementation, to back the Section 5 claim
 * that the algorithms' work per access is trivial.  Measures the
 * full owner protocol (lookup + policy access + victim/fill) on the
 * paper's 16 KB 4-way geometry over a mixed-locality address stream.
 */

#include <benchmark/benchmark.h>

#include "cache/PolicyFactory.h"
#include "cache/TagArray.h"
#include "util/Random.h"

namespace
{

using namespace csr;

void
runPolicy(benchmark::State &state, PolicyKind kind)
{
    const CacheGeometry geom(16 * 1024, 4, 64);
    PolicyPtr policy = makePolicy(kind, geom);
    TagArray tags(geom);
    Rng rng(42);

    // Pre-generate a mixed stream: hot set + streaming tail.
    std::vector<Addr> stream;
    stream.reserve(1 << 16);
    Addr cursor = 0;
    for (int i = 0; i < (1 << 16); ++i) {
        if (rng.nextBool(0.6))
            stream.push_back(rng.nextBelow(256) * 64);
        else
            stream.push_back((0x100000 + (cursor++ % 4096)) * 64);
    }
    Rng cost_rng(7);

    std::size_t i = 0;
    for (auto _ : state) {
        const Addr addr = stream[i++ & 0xFFFF];
        const std::uint32_t set = geom.setIndex(addr);
        const Addr tag = geom.tag(addr);
        const int hit_way = tags.findWay(set, tag);
        policy->access(set, tag, hit_way);
        if (hit_way == kInvalidWay) {
            int way = tags.findInvalidWay(set);
            if (way == kInvalidWay)
                way = policy->selectVictim(set);
            tags.install(set, static_cast<std::uint32_t>(way), tag);
            policy->fill(set, way, tag,
                         static_cast<Cost>(1 + cost_rng.nextBelow(8)));
        }
        benchmark::DoNotOptimize(hit_way);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Lru(benchmark::State &s) { runPolicy(s, PolicyKind::Lru); }
void BM_Gd(benchmark::State &s) { runPolicy(s, PolicyKind::GreedyDual); }
void BM_Bcl(benchmark::State &s) { runPolicy(s, PolicyKind::Bcl); }
void BM_Dcl(benchmark::State &s) { runPolicy(s, PolicyKind::Dcl); }
void BM_Acl(benchmark::State &s) { runPolicy(s, PolicyKind::Acl); }

BENCHMARK(BM_Lru);
BENCHMARK(BM_Gd);
BENCHMARK(BM_Bcl);
BENCHMARK(BM_Dcl);
BENCHMARK(BM_Acl);

} // namespace

BENCHMARK_MAIN();
