/**
 * @file
 * Shared plumbing for the reproduction benches.
 *
 * Every bench binary regenerates one of the paper's tables or
 * figures.  The problem scale is selected with the CSR_SCALE
 * environment variable: "test" (seconds, sanity), "small" (default;
 * the calibrated scale used in EXPERIMENTS.md), or "full" (closest to
 * the paper's trace lengths; minutes to hours).
 */

#ifndef CSR_BENCH_BENCHCOMMON_H
#define CSR_BENCH_BENCHCOMMON_H

#include <cstdlib>
#include <iostream>
#include <string>

#include "trace/SampledTrace.h"
#include "trace/WorkloadFactory.h"
#include "util/Table.h"

namespace csr::bench
{

/** Scale from $CSR_SCALE (test|small|full), default small. */
inline WorkloadScale
scaleFromEnv()
{
    const char *env = std::getenv("CSR_SCALE");
    if (!env)
        return WorkloadScale::Small;
    const std::string s(env);
    if (s == "test")
        return WorkloadScale::Test;
    if (s == "full")
        return WorkloadScale::Full;
    return WorkloadScale::Small;
}

inline const char *
scaleName(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::Test:
        return "test";
      case WorkloadScale::Small:
        return "small";
      case WorkloadScale::Full:
        return "full";
    }
    return "?";
}

/** Build the sampled trace of a benchmark (the paper samples one
 *  slave process; we sample processor 1). */
inline SampledTrace
sampledTrace(BenchmarkId id, WorkloadScale scale)
{
    auto workload = makeWorkload(id, scale);
    return buildSampledTrace(*workload, /*sampled=*/1);
}

/** Standard bench banner. */
inline void
banner(const std::string &what, WorkloadScale scale)
{
    std::cout << "### " << what << "\n"
              << "### scale=" << scaleName(scale)
              << "  (set CSR_SCALE=test|small|full)\n\n";
}

} // namespace csr::bench

#endif // CSR_BENCH_BENCHCOMMON_H
