/**
 * @file
 * Shared plumbing for the reproduction benches.
 *
 * Every bench binary regenerates one of the paper's tables or
 * figures.  All of them parse the shared flag grammar through
 * benchArgs(): --scale test|small|full selects the problem scale
 * ("test" seconds/sanity, "small" the calibrated default of
 * EXPERIMENTS.md, "full" closest to the paper's trace lengths), and
 * the common flags (--jobs, --seed, --json, --metrics) mean the same
 * thing as in csrsim.  The historical CSR_SCALE / CSR_JOBS
 * environment variables remain as fallbacks when the flags are
 * absent.
 */

#ifndef CSR_BENCH_BENCHCOMMON_H
#define CSR_BENCH_BENCHCOMMON_H

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "robust/Errors.h"
#include "sim/SweepRunner.h"
#include "telemetry/MetricRegistry.h"
#include "trace/SampledTrace.h"
#include "trace/WorkloadFactory.h"
#include "util/CliArgs.h"
#include "util/Stats.h"
#include "util/Table.h"
#include "util/ThreadPool.h"

namespace csr::bench
{

/** Scale from $CSR_SCALE (test|small|full), default small. */
inline WorkloadScale
scaleFromEnv()
{
    const char *env = std::getenv("CSR_SCALE");
    if (!env)
        return WorkloadScale::Small;
    const std::string s(env);
    if (s == "test")
        return WorkloadScale::Test;
    if (s == "full")
        return WorkloadScale::Full;
    return WorkloadScale::Small;
}

inline const char *
scaleName(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::Test:
        return "test";
      case WorkloadScale::Small:
        return "small";
      case WorkloadScale::Full:
        return "full";
    }
    return "?";
}

/** Build the sampled trace of a benchmark (the paper samples one
 *  slave process; we sample processor 1). */
inline SampledTrace
sampledTrace(BenchmarkId id, WorkloadScale scale)
{
    auto workload = makeWorkload(id, scale);
    return buildSampledTrace(*workload, /*sampled=*/1);
}

/** Standard bench banner. */
inline void
banner(const std::string &what, WorkloadScale scale)
{
    std::cout << "### " << what << "\n"
              << "### scale=" << scaleName(scale)
              << "  (--scale test|small|full, or CSR_SCALE)\n\n";
}

/** Worker count from $CSR_JOBS (default: one per hardware thread). */
inline unsigned
jobsFromEnv()
{
    const char *env = std::getenv("CSR_JOBS");
    if (!env)
        return ThreadPool::defaultThreads();
    const long jobs = std::strtol(env, nullptr, 10);
    return jobs > 0 ? static_cast<unsigned>(jobs) : 1;
}

/**
 * Parse a bench binary's command line: the common flags plus --scale
 * and any bench-specific keys in @p extra_known.  --help prints the
 * shared usage and exits; a bad flag prints its diagnostic and exits
 * with the ConfigError code instead of throwing through main.
 */
inline CliArgs
benchArgs(int argc, char **argv,
          const std::vector<std::string> &extra_known = {})
{
    try {
        const CliArgs args(argc, argv);
        if (args.helpRequested()) {
            std::cout << "usage: " << argv[0]
                      << " [--scale test|small|full] [--jobs N]\n"
                         "  plus the common flags: --seed N "
                         "--json FILE --metrics FILE\n";
            std::exit(exitcode::kOk);
        }
        std::vector<std::string> known = {"scale"};
        known.insert(known.end(), extra_known.begin(),
                     extra_known.end());
        args.requireKnown(known);
        return args;
    } catch (const Error &e) {
        std::cerr << e.kind() << ": " << e.what() << "\n";
        std::exit(e.exitCode());
    }
}

/** --scale, falling back to $CSR_SCALE when the flag is absent. */
inline WorkloadScale
scaleFrom(const CliArgs &args)
{
    if (!args.has("scale"))
        return scaleFromEnv();
    const std::string name = args.get("scale", "small");
    if (name == "test")
        return WorkloadScale::Test;
    if (name == "small")
        return WorkloadScale::Small;
    if (name == "full")
        return WorkloadScale::Full;
    std::cerr << "ConfigError: --scale '" << name
              << "' must be test|small|full\n";
    std::exit(exitcode::kConfig);
}

/** --jobs, falling back to $CSR_JOBS (0 = one per hardware thread). */
inline unsigned
jobsFrom(const CliArgs &args)
{
    const unsigned jobs = args.jobs(/*env_fallback=*/true);
    return jobs ? jobs : ThreadPool::defaultThreads();
}

/**
 * The shared sweep harness: stamp the bench scale onto @p grid, run
 * it on $CSR_JOBS workers and hand the results back for pivoting.
 */
inline SweepResult
runSweep(SweepGrid grid)
{
    grid.scale = scaleFromEnv();
    const SweepRunner runner(jobsFromEnv());
    return runner.run(grid);
}

/** Same, with the scale and worker count taken from the flags. */
inline SweepResult
runSweep(SweepGrid grid, const CliArgs &args)
{
    grid.scale = scaleFrom(args);
    const SweepRunner runner(jobsFrom(args));
    return runner.run(grid);
}

/** Cells of @p result matching a predicate, in grid order. */
inline std::vector<SweepCellResult>
filterCells(const SweepResult &result,
            const std::function<bool(const SweepCellResult &)> &keep)
{
    std::vector<SweepCellResult> out;
    for (const SweepCellResult &cell : result.cells)
        if (keep(cell))
            out.push_back(cell);
    return out;
}

/**
 * Pivot sweep cells into a rows x columns table.  Row and column keys
 * appear in first-encounter order, which matches the grid's stable
 * expansion order, so benches print the same layout the serial loops
 * used to.
 */
inline TextTable
pivot(const std::string &title, const std::string &corner,
      const std::vector<SweepCellResult> &cells,
      const std::function<std::string(const SweepCellResult &)> &row_of,
      const std::function<std::string(const SweepCellResult &)> &col_of,
      const std::function<std::string(const SweepCellResult &)> &value_of)
{
    std::vector<std::string> row_keys, col_keys;
    std::map<std::pair<std::string, std::string>, std::string> values;
    for (const SweepCellResult &cell : cells) {
        const std::string row = row_of(cell);
        const std::string col = col_of(cell);
        if (std::find(row_keys.begin(), row_keys.end(), row) ==
            row_keys.end())
            row_keys.push_back(row);
        if (std::find(col_keys.begin(), col_keys.end(), col) ==
            col_keys.end())
            col_keys.push_back(col);
        values[{row, col}] = value_of(cell);
    }

    TextTable table(title);
    std::vector<std::string> header = {corner};
    header.insert(header.end(), col_keys.begin(), col_keys.end());
    table.setHeader(header);
    for (const std::string &row : row_keys) {
        std::vector<std::string> cells_out = {row};
        for (const std::string &col : col_keys) {
            auto it = values.find({row, col});
            cells_out.push_back(it == values.end() ? "-" : it->second);
        }
        table.addRow(cells_out);
    }
    return table;
}

/** The standard pivot value: relative cost savings over LRU. */
inline std::string
savingsOf(const SweepCellResult &cell)
{
    return TextTable::num(cell.savingsPct, 2);
}

/**
 * Percentile summary of latency histograms, one row per series.
 * Benches that run the NUMA machine print this next to their
 * execution-time tables so the latency *distribution* behind each
 * mean is visible (the same data --metrics exports as JSON).
 */
inline TextTable
latencyHistogramTable(
    const std::string &title,
    const std::vector<std::pair<std::string, const Histogram *>> &rows)
{
    TextTable table(title);
    table.setHeader({"Series", "Samples", "p50 (ns)", "p90 (ns)",
                     "p99 (ns)", "overflow"});
    for (const auto &[label, hist] : rows) {
        table.addRow({label, TextTable::count(hist->totalCount()),
                      TextTable::num(hist->percentile(0.50), 1),
                      TextTable::num(hist->percentile(0.90), 1),
                      TextTable::num(hist->percentile(0.99), 1),
                      TextTable::count(hist->overflow())});
    }
    return table;
}

/** Write @p registry as unified metrics JSON when @p path is set
 *  (the benches' --metrics flag), with a stderr note. */
inline void
maybeWriteMetrics(const MetricRegistry &registry, const std::string &path)
{
    if (path.empty() || registry.empty())
        return;
    registry.writeJson(path);
    std::cerr << "### wrote metrics to " << path << "\n";
}

/** Footer making the parallel harness observable (goes to stderr so
 *  table output stays diffable across $CSR_JOBS values). */
inline void
printSweepTiming(const SweepResult &result)
{
    std::cerr << "### sweep: " << result.cells.size() << " cells on "
              << result.jobs << " jobs in "
              << TextTable::num(result.wallSec, 2) << "s (task total "
              << TextTable::num(result.taskSecTotal, 2) << "s, speedup "
              << TextTable::num(result.wallSec > 0.0
                                    ? result.taskSecTotal /
                                          result.wallSec
                                    : 0.0, 2)
              << "x, set CSR_JOBS=N)\n";
}

} // namespace csr::bench

#endif // CSR_BENCH_BENCHCOMMON_H
