/**
 * @file
 * Ablation A: the cost-depreciation factor.
 *
 * The paper depreciates a reserved block's cost by *twice* the
 * sacrificed block's cost, "a way to hedge against the bet" (Section
 * 2.3).  This bench sweeps the factor {0.5, 1, 2, 4} for BCL and DCL
 * under the first-touch mapping at r=4, on the parallel sweep
 * harness, to show the design point: a small factor chases
 * reservations too long (losses on LU-like workloads grow), a large
 * one gives up savings.
 */

#include <iostream>

#include "BenchCommon.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Ablation: Acost depreciation factor (first touch, "
                  "r=4)", scale);

    const SweepResult sweep =
        bench::runSweep(presetGrid("ablation-depreciation"), args);

    for (PolicyKind kind : {PolicyKind::Bcl, PolicyKind::Dcl}) {
        const auto pane = bench::filterCells(
            sweep, [&](const SweepCellResult &res) {
                return res.cell.policy == kind;
            });
        TextTable table = bench::pivot(
            policyKindName(kind) +
                " -- savings over LRU (%) by depreciation factor",
            "Benchmark", pane,
            [](const SweepCellResult &res) {
                return benchmarkName(res.cell.benchmark);
            },
            [](const SweepCellResult &res) {
                return "x" +
                       TextTable::num(res.cell.depreciationFactor, 1);
            },
            bench::savingsOf);
        table.print(std::cout);
        std::cout << "\n";
    }
    bench::printSweepTiming(sweep);
    return 0;
}
