/**
 * @file
 * Ablation A: the cost-depreciation factor.
 *
 * The paper depreciates a reserved block's cost by *twice* the
 * sacrificed block's cost, "a way to hedge against the bet" (Section
 * 2.3).  This bench sweeps the factor {0.5, 1, 2, 4} for BCL and DCL
 * under the first-touch mapping at r=4 to show the design point: a
 * small factor chases reservations too long (losses on LU-like
 * workloads grow), a large one gives up savings.
 */

#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceStudy.h"

using namespace csr;

int
main()
{
    const WorkloadScale scale = bench::scaleFromEnv();
    bench::banner("Ablation: Acost depreciation factor (first touch, "
                  "r=4)", scale);

    const std::vector<double> factors = {0.5, 1.0, 2.0, 4.0};

    for (PolicyKind kind : {PolicyKind::Bcl, PolicyKind::Dcl}) {
        TextTable table(policyKindName(kind) +
                        " -- savings over LRU (%) by depreciation "
                        "factor");
        std::vector<std::string> header = {"Benchmark"};
        for (double factor : factors)
            header.push_back("x" + TextTable::num(factor, 1));
        table.setHeader(header);

        for (BenchmarkId id : paperBenchmarks()) {
            const SampledTrace trace = bench::sampledTrace(id, scale);
            const TraceStudy study(trace);
            const FirstTouchTwoCost model(CostRatio::finite(4),
                                          trace.homeOf,
                                          trace.sampledProc);
            std::vector<std::string> row = {benchmarkName(id)};
            for (double factor : factors) {
                PolicyParams params;
                params.depreciationFactor = factor;
                row.push_back(TextTable::num(
                    study.savingsPct(kind, model, params), 2));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
