/**
 * @file
 * Ablation C: cache associativity.
 *
 * Section 3.1 varies associativity from 2 to 8; reservations need
 * victims to choose from, so higher associativity widens the
 * opportunity (and the ETD grows with s-1 entries).  Sweeps s in
 * {2, 4, 8} at a fixed 16 KB capacity for DCL under both cost
 * mappings at r=4, on the parallel sweep harness.
 */

#include <iostream>

#include "BenchCommon.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Ablation: L2 associativity (DCL, r=4)", scale);

    const SweepResult sweep =
        bench::runSweep(presetGrid("ablation-assoc"), args);

    for (CostMapping mapping :
         {CostMapping::Random, CostMapping::FirstTouch}) {
        const auto pane = bench::filterCells(
            sweep, [&](const SweepCellResult &res) {
                return res.cell.mapping == mapping;
            });
        TextTable table = bench::pivot(
            std::string("DCL savings over LRU (%) -- ") +
                (mapping == CostMapping::Random
                     ? "random mapping, HAF=0.3"
                     : "first-touch mapping"),
            "Benchmark", pane,
            [](const SweepCellResult &res) {
                return benchmarkName(res.cell.benchmark);
            },
            [](const SweepCellResult &res) {
                return std::to_string(res.cell.l2Assoc) + "-way";
            },
            bench::savingsOf);
        table.print(std::cout);
        std::cout << "\n";
    }
    bench::printSweepTiming(sweep);
    return 0;
}
