/**
 * @file
 * Ablation C: cache associativity.
 *
 * Section 3.1 varies associativity from 2 to 8; reservations need
 * victims to choose from, so higher associativity widens the
 * opportunity (and the ETD grows with s-1 entries).  Sweeps s in
 * {2, 4, 8} at a fixed 16 KB capacity for DCL under both cost
 * mappings at r=4.
 */

#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceStudy.h"

using namespace csr;

int
main()
{
    const WorkloadScale scale = bench::scaleFromEnv();
    bench::banner("Ablation: L2 associativity (DCL, r=4)", scale);

    const std::vector<std::uint32_t> assocs = {2, 4, 8};

    for (bool random_mapping : {true, false}) {
        TextTable table(std::string("DCL savings over LRU (%) -- ") +
                        (random_mapping ? "random mapping, HAF=0.3"
                                        : "first-touch mapping"));
        std::vector<std::string> header = {"Benchmark"};
        for (std::uint32_t assoc : assocs)
            header.push_back(std::to_string(assoc) + "-way");
        table.setHeader(header);

        for (BenchmarkId id : paperBenchmarks()) {
            const SampledTrace trace = bench::sampledTrace(id, scale);
            std::vector<std::string> row = {benchmarkName(id)};
            for (std::uint32_t assoc : assocs) {
                TraceSimConfig config;
                config.l2Assoc = assoc;
                const TraceStudy study(trace, config);
                const RandomTwoCost random(CostRatio::finite(4), 0.3);
                const FirstTouchTwoCost first_touch(
                    CostRatio::finite(4), trace.homeOf,
                    trace.sampledProc);
                const CostModel &model =
                    random_mapping
                        ? static_cast<const CostModel &>(random)
                        : static_cast<const CostModel &>(first_touch);
                row.push_back(TextTable::num(
                    study.savingsPct(PolicyKind::Dcl, model), 2));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
