/**
 * @file
 * Extension (paper Section 7): penalty-weighted costs in the NUMA
 * study.
 *
 * "It is well-known that stores can be easily buffered whereas loads
 * are more critical to performance ... we could assign a high cost to
 * critical load misses and low cost to store misses."  This bench
 * discounts the replacement cost of store misses (weight 1.0 = the
 * paper's latency cost, 0.3 = stores considered cheap to re-miss) and
 * reports DCL's execution-time reduction at 500 MHz.
 */

#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "numa/NumaSystem.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Extension: store-penalty-weighted costs (DCL, "
                  "500MHz)", scale);

    const std::vector<double> weights = {1.0, 0.6, 0.3};

    TextTable table("DCL execution-time reduction over LRU (%) by "
                    "store cost weight");
    std::vector<std::string> header = {"Benchmark"};
    for (double weight : weights)
        header.push_back("w=" + TextTable::num(weight, 1));
    table.setHeader(header);

    for (BenchmarkId id : paperBenchmarks()) {
        auto workload = makeWorkload(id, scale, /*numa_sized=*/true);
        NumaConfig config;
        config.cycleNs = 2;
        config.policy = PolicyKind::Lru;
        NumaSystem lru(config, *workload);
        const Tick lru_time = lru.run().execTimeNs;

        std::vector<std::string> row = {benchmarkName(id)};
        for (double weight : weights) {
            config.policy = PolicyKind::Dcl;
            config.storeCostWeight = weight;
            NumaSystem sys(config, *workload);
            const Tick t = sys.run().execTimeNs;
            row.push_back(TextTable::num(
                100.0 *
                    (static_cast<double>(lru_time) -
                     static_cast<double>(t)) /
                    static_cast<double>(lru_time),
                2));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
