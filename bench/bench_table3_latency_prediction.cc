/**
 * @file
 * Reproduction of Table 3: correlation between consecutive unloaded
 * miss latencies to the same block by the same processor, under LRU
 * replacement and the MESI protocol *without* replacement hints.
 *
 * For every (last miss, current miss) attribute pair -- attribute =
 * request type {read, rd-excl} x memory state {U, S, E} -- prints
 * occurrence %, mismatch % and the average unloaded-latency error in
 * processor cycles.  Expected shape (paper): the vast majority
 * (~93%) of consecutive same-block misses see an unchanged unloaded
 * latency, which is what justifies the last-latency predictor.
 */

#include <iostream>

#include "BenchCommon.h"
#include "numa/NumaSystem.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Table 3: consecutive-miss latency correlation "
                  "(protocol without replacement hints)", scale);

    LatencyCorrelator total(1);
    for (BenchmarkId id : paperBenchmarks()) {
        NumaConfig config;
        config.cycleNs = 1; // report errors in 1 GHz cycles (= ns)
        config.replacementHints = false;
        config.policy = PolicyKind::Lru;
        auto workload = makeWorkload(id, scale, /*numa_sized=*/true);
        NumaSystem sys(config, *workload);
        sys.run();
        const LatencyCorrelator &corr = sys.correlator();
        std::cout << benchmarkName(id) << ": " << corr.totalPairs()
                  << " consecutive-miss pairs, "
                  << TextTable::num(corr.matchedPct(), 1)
                  << "% with unchanged unloaded latency\n";

        // Print the per-benchmark matrix.
        TextTable table(benchmarkName(id) +
                        " -- occurrence% / mismatch% / avg err (cycles)");
        std::vector<std::string> header = {"last \\ cur"};
        for (int cur = 0; cur < LatencyCorrelator::kClasses; ++cur)
            header.push_back(LatencyCorrelator::className(cur));
        table.setHeader(header);
        for (int last = 0; last < LatencyCorrelator::kClasses; ++last) {
            std::vector<std::string> row = {
                LatencyCorrelator::className(last)};
            for (int cur = 0; cur < LatencyCorrelator::kClasses; ++cur) {
                row.push_back(
                    TextTable::num(corr.occurrencePct(last, cur), 1) +
                    "/" +
                    TextTable::num(corr.cell(last, cur).mismatchPct(),
                                   0) +
                    "/" +
                    TextTable::num(corr.avgErrorCycles(last, cur), 0));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "(paper: 93% of misses repeat the previous unloaded "
                 "latency across all four benchmarks)\n";
    return 0;
}
