/**
 * @file
 * Trace-replay throughput: decode + replay of a recorded .csrt
 * stream straight through CacheModel, per policy.
 *
 * The fixture trace is recorded in-process from the deterministic
 * Zipfian KeyGenerator (the same stream `csrtrace record` captures),
 * so the bench needs no external file and the deterministic counters
 * -- hits, misses, evictions, aggregate miss cost -- are pure
 * functions of (seed, scale, policy) that check_bench.py gates
 * against bench/baselines/BENCH_replay.json.  Throughput (ops/min,
 * in the "timing" block CI skips) is the headline number: the
 * acceptance floor for the replay engine is 100M ops/min in Release,
 * asserted in CI via --min-ops-per-min.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "BenchCommon.h"
#include "replay/Replayer.h"
#include "replay/TraceWriter.h"
#include "serve/KeyGenerator.h"
#include "util/Random.h"

using namespace csr;
using namespace csr::replay;

namespace
{

std::uint64_t
opsForScale(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::Test:
        return 500'000;
      case WorkloadScale::Small:
        return 5'000'000;
      case WorkloadScale::Full:
        return 20'000'000;
    }
    return 5'000'000;
}

/** Record the fixture trace: Zipfian keys over a keyspace well above
 *  cache capacity, 20% writes, 1us spacing.  15% of keys live on a
 *  16x slower tier (same shape as SyntheticBackend's bimodal
 *  latency), carried as per-record cost hints -- with uniform costs
 *  the cost-sensitive policies degenerate to LRU by design and the
 *  bench would measure nothing but decode speed. */
std::string
recordFixture(std::uint64_t ops, std::uint64_t seed)
{
    serve::WorkloadMix mix;
    mix.numKeys = 1 << 18;
    mix.writeFraction = 0.2;
    serve::KeyGenerator gen(mix, seed);

    const std::string path = "bench_replay_fixture.csrt";
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < ops; ++i) {
        const serve::Op op = gen.next();
        ReplayRecord rec;
        rec.tsNs = i * 1000;
        rec.key = op.key;
        rec.op = op.write ? TraceOp::Set : TraceOp::Get;
        rec.valueSize = 8;
        const bool slow = hashMix64(op.key ^ seed) % 100 < 15;
        rec.costHint = slow ? 32'000 : 2'000;
        writer.append(rec);
    }
    writer.finish();
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(
        argc, argv, {"ops", "cache-bytes", "min-ops-per-min"});
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Trace replay: decode+replay throughput by policy "
                  "(recorded Zipfian .csrt)", scale);

    const std::uint64_t ops =
        args.getUInt("ops", opsForScale(scale));
    const std::uint64_t seed = args.seed(7);
    const double min_ops_per_min =
        args.getDouble("min-ops-per-min", 0.0);

    std::cerr << "### recording " << ops << "-op fixture trace...\n";
    const std::string path = recordFixture(ops, seed);

    ReplayConfig config;
    config.path = path;
    config.cacheBytes = args.getUInt("cache-bytes", 1 << 20);
    config.jobs = bench::jobsFrom(args);

    const std::vector<PolicyKind> policies = {
        PolicyKind::Lru, PolicyKind::GreedyDual, PolicyKind::Bcl,
        PolicyKind::Dcl, PolicyKind::Acl,
    };

    TextTable table("replay of " + std::to_string(ops) +
                    " ops, cache " +
                    std::to_string(config.cacheBytes / 1024) + " KiB");
    table.setHeader({"Policy", "Hit %", "Misses", "Miss cost (ms)",
                     "Evictions", "Mops/min"});

    struct PolicyRun
    {
        std::string name;
        ReplayResult result;
    };
    std::vector<PolicyRun> runs;
    bool floor_ok = true;

    for (PolicyKind kind : policies) {
        config.policy = kind;
        config.policyParams.seed = seed;
        const ReplayResult result = replayTrace(config);
        const std::string name = policyKindName(kind);
        table.addRow({
            name,
            TextTable::num(result.totals.hitRatio() * 100.0),
            TextTable::count(result.totals.misses),
            TextTable::num(result.totals.missCostNs / 1e6, 3),
            TextTable::count(result.totals.evictions),
            TextTable::num(result.opsPerMin() / 1e6, 1),
        });
        if (min_ops_per_min > 0.0 &&
            result.opsPerMin() < min_ops_per_min) {
            std::cerr << "### FAIL: " << name << " replayed at "
                      << TextTable::num(result.opsPerMin(), 0)
                      << " ops/min, below the --min-ops-per-min "
                      << TextTable::num(min_ops_per_min, 0)
                      << " floor\n";
            floor_ok = false;
        }
        runs.push_back({name, result});
    }
    table.print(std::cout);

    const std::string json_path =
        args.has("json") ? args.jsonPath() : "BENCH_replay.json";
    std::ofstream os(json_path);
    if (os) {
        os << "{\n  \"ops\": " << ops << ",\n  \"cacheBytes\": "
           << config.cacheBytes << ",\n  \"policies\": [\n";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            os << "    ";
            runs[i].result.writeJsonObject(os, runs[i].name,
                                           /*indent=*/4);
            os << (i + 1 < runs.size() ? ",\n" : "\n");
        }
        os << "  ]\n}\n";
        std::cerr << "### wrote JSON to " << json_path << "\n";
    } else {
        std::cerr << "### cannot write " << json_path << "\n";
    }

    if (!args.metricsPath().empty()) {
        MetricRegistry metrics;
        for (const PolicyRun &run : runs) {
            metrics.incCounter("replay.misses." + run.name,
                               run.result.totals.misses);
            metrics.stat("replay.ops_per_min." + run.name)
                .add(run.result.opsPerMin());
        }
        bench::maybeWriteMetrics(metrics, args.metricsPath());
    }

    std::remove(path.c_str());
    return floor_ok ? 0 : 1;
}
