/**
 * @file
 * Extension: offline oracle bounds.
 *
 * The paper's companion work [Jeong & Dubois, SPAA'99] computes the
 * optimal cost-sensitive schedule offline.  This bench runs Belady's
 * OPT (miss-count-optimal) and a greedy cost-weighted oracle on the
 * same traces to bound how much headroom the online algorithms leave.
 * Offline policies need a policy-independent access stream, so these
 * runs disable the L1 (see TraceStudy); LRU/DCL are re-run in the
 * same L2-only configuration for a fair comparison.
 */

#include <iostream>

#include "BenchCommon.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceStudy.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Offline bounds (L2-only hierarchy, first touch, "
                  "r=4)", scale);

    TextTable table("Savings over LRU (%), L2-only");
    table.setHeader({"Benchmark", "DCL", "ACL", "OPT (miss count)",
                     "CostOPT~ (greedy oracle)"});

    for (BenchmarkId id : paperBenchmarks()) {
        const SampledTrace trace = bench::sampledTrace(id, scale);
        TraceSimConfig config;
        config.useL1 = false;
        const TraceStudy study(trace, config);
        const FirstTouchTwoCost model(CostRatio::finite(4), trace.homeOf,
                                      trace.sampledProc);
        table.addRow({
            benchmarkName(id),
            TextTable::num(study.savingsPct(PolicyKind::Dcl, model), 2),
            TextTable::num(study.savingsPct(PolicyKind::Acl, model), 2),
            TextTable::num(study.savingsPct(PolicyKind::Opt, model), 2),
            TextTable::num(study.savingsPct(PolicyKind::CostOpt, model),
                           2),
        });
    }
    table.print(std::cout);
    std::cout << "\n(the oracles bound what any online policy could "
                 "reach; CostOPT~ is a greedy heuristic, not the true "
                 "CSOPT)\n";
    return 0;
}
