/**
 * @file
 * Contention scaling of the csr::serve hit path: locked vs seqlock
 * throughput as workers pile onto the same shards.
 *
 * Every cell replays the same read-only Zipfian stream (writeFraction
 * 0, keyspace sized so the cache holds the hot set and gets mostly
 * hit) under --affinity free, so every worker contends on every
 * shard.  Under the locked hit path that serializes each shard on its
 * mutex; under the seqlock path read hits take no lock at all, so hit
 * throughput should scale with the worker count.
 *
 * The figure of merit CI gates on: for each policy,
 *
 *     scaling = seqlock hits/s at max workers
 *             / locked  hits/s at the first (lowest) worker count
 *
 * --min-scaling F makes the binary exit non-zero when any policy's
 * scaling falls below F (the CI contention job passes 2.0).  On a
 * single-core host the ratio caps near 1.0 -- gate only where the
 * runner actually has cores.
 *
 * A second sweep measures the WRITE path: the same stream with
 * --write-fracs (default 0.3) mixed writes, replayed against the
 * single-mutex shard ("locked": --stripes 1, locked hit path) and the
 * striped shard ("striped": --stripes N, seqlock hit path).  Writes
 * serialize per stripe, so striping is what lets them scale; the
 * figure of merit per policy and write fraction is
 *
 *     write scaling = striped ops/s at max workers
 *                   / locked  ops/s at the first worker count
 *
 * gated by --min-write-scaling F (the CI contention job passes 1.5 at
 * 30% writes; same single-core caveat as above).
 *
 * JSON (BENCH_contention.json by default) carries every cell of both
 * sweeps plus the scaling summaries for the artifact archive.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "BenchCommon.h"
#include "cache/SimdScan.h"
#include "robust/Errors.h"
#include "serve/CacheService.h"
#include "serve/LoadHarness.h"
#include "serve/SyntheticBackend.h"

using namespace csr;
using namespace csr::serve;

namespace
{

std::uint64_t
opsForScale(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::Test:
        return 200'000;
      case WorkloadScale::Small:
        return 2'000'000;
      case WorkloadScale::Full:
        return 8'000'000;
    }
    return 2'000'000;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

struct Cell
{
    std::string policy;
    HitPath path = HitPath::Locked;
    unsigned workers = 0;
    double wallSec = 0.0;
    std::uint64_t hits = 0;
    double hitsPerSec = 0.0;
    ServeTotals totals;
};

/** One measurement of the write sweep: a (policy, shard config,
 *  write fraction, workers) replay, scored in whole ops/s because
 *  writes never hit. */
struct WriteCell
{
    std::string policy;
    std::string config; // "locked" or "striped"
    unsigned stripes = 1;
    double writeFrac = 0.0;
    unsigned workers = 0;
    double wallSec = 0.0;
    double opsPerSec = 0.0;
    ServeTotals totals;
};

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(
        argc, argv,
        {"policies", "workers", "ops", "keys", "min-scaling",
         "write-fracs", "stripes", "min-write-scaling"});
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Serving mode: hit-path contention scaling "
                  "(locked vs seqlock, --affinity free)",
                  scale);
    std::cout << "### tag scan ISA: " << simd::tagScanIsa() << "\n\n";

    const std::uint64_t ops =
        args.getUInt("ops", opsForScale(scale));
    // Keyspace close to cache capacity: the stream mostly hits, so
    // the hit path -- not the backend -- is what's being measured.
    const std::uint64_t keys = args.getUInt("keys", 16'384);
    const double min_scaling = args.getDouble("min-scaling", 0.0);
    const double min_write_scaling =
        args.getDouble("min-write-scaling", 0.0);
    unsigned striped_stripes = kStripesAuto;
    try {
        striped_stripes = requireStripes(args.get("stripes", "4"));
    } catch (const ConfigError &err) {
        std::cerr << "ConfigError: " << err.what() << "\n";
        return exitcode::kConfig;
    }
    std::vector<double> write_fracs;
    for (const std::string &item :
         splitList(args.get("write-fracs", "0.3"))) {
        char *end = nullptr;
        const double f = std::strtod(item.c_str(), &end);
        if (end == item.c_str() || *end != '\0' || f < 0.0 ||
            f > 1.0) {
            std::cerr << "ConfigError: --write-fracs entries must be "
                         "fractions in [0, 1]\n";
            return exitcode::kConfig;
        }
        write_fracs.push_back(f);
    }
    if (write_fracs.empty()) {
        std::cerr << "ConfigError: --write-fracs must be non-empty\n";
        return exitcode::kConfig;
    }

    std::vector<PolicyKind> policies;
    for (const std::string &name :
         splitList(args.get("policies", "lru,acl"))) {
        const auto kind = parsePolicyKind(name);
        if (!kind) {
            std::cerr << "ConfigError: unknown policy '" << name
                      << "'\n";
            return exitcode::kConfig;
        }
        policies.push_back(*kind);
    }
    std::vector<unsigned> worker_list;
    for (const std::string &item :
         splitList(args.get("workers", "1,2,4"))) {
        const unsigned w = static_cast<unsigned>(
            std::strtoul(item.c_str(), nullptr, 10));
        if (w == 0) {
            std::cerr << "ConfigError: --workers entries must be "
                         "positive\n";
            return exitcode::kConfig;
        }
        worker_list.push_back(w);
    }
    if (policies.empty() || worker_list.empty()) {
        std::cerr << "ConfigError: --policies and --workers must be "
                     "non-empty\n";
        return exitcode::kConfig;
    }

    std::vector<Cell> cells;
    for (const PolicyKind kind : policies) {
        for (const HitPath path :
             {HitPath::Locked, HitPath::Seqlock}) {
            for (const unsigned workers : worker_list) {
                ServeConfig serve_config;
                serve_config.shards = 4;
                serve_config.shardBytes = 256 * 1024;
                serve_config.policy = kind;
                serve_config.policyParams.seed = args.seed(7);
                serve_config.hitPath = path;

                SyntheticBackendConfig backend_config;
                backend_config.seed = args.seed(7);

                HarnessConfig harness;
                harness.ops = ops;
                harness.workers = workers;
                harness.seed = args.seed(7);
                harness.shardAffinity = false; // real contention
                harness.mix.numKeys = keys;
                harness.mix.writeFraction = 0.0;

                SyntheticBackend backend(backend_config);
                CacheService service(serve_config, backend);
                const HarnessResult result = runLoad(service, harness);
                service.checkInvariants();

                Cell cell;
                cell.policy = service.policyName();
                cell.path = path;
                cell.workers = workers;
                cell.wallSec = result.wallSec;
                cell.hits = result.totals.hits;
                cell.hitsPerSec =
                    result.wallSec > 0.0
                        ? static_cast<double>(result.totals.hits) /
                              result.wallSec
                        : 0.0;
                cell.totals = result.totals;
                cells.push_back(cell);
            }
        }
    }

    TextTable table("hit throughput (M hits/s) by policy, hit path, "
                    "workers");
    std::vector<std::string> header = {"Policy / path"};
    for (const unsigned w : worker_list)
        header.push_back("w=" + std::to_string(w));
    table.setHeader(header);
    for (std::size_t row = 0; row < cells.size();
         row += worker_list.size()) {
        std::vector<std::string> out = {
            cells[row].policy + " / " + hitPathName(cells[row].path)};
        for (std::size_t i = 0; i < worker_list.size(); ++i)
            out.push_back(TextTable::num(
                cells[row + i].hitsPerSec / 1e6, 2));
        table.addRow(out);
    }
    table.print(std::cout);

    // Scaling summary: seqlock at max workers over the locked
    // single-worker baseline, per policy.
    struct Scaling
    {
        std::string policy;
        double baselineHps = 0.0;
        double seqlockHps = 0.0;
        double ratio = 0.0;
    };
    std::vector<Scaling> scalings;
    const std::size_t per_policy = 2 * worker_list.size();
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const Cell &baseline = cells[p * per_policy]; // locked, first w
        const Cell &peak =
            cells[p * per_policy + per_policy - 1]; // seqlock, max w
        Scaling s;
        s.policy = baseline.policy;
        s.baselineHps = baseline.hitsPerSec;
        s.seqlockHps = peak.hitsPerSec;
        s.ratio = baseline.hitsPerSec > 0.0
                      ? peak.hitsPerSec / baseline.hitsPerSec
                      : 0.0;
        scalings.push_back(s);
    }

    TextTable summary("scaling: seqlock@w=" +
                      std::to_string(worker_list.back()) +
                      " / locked@w=" +
                      std::to_string(worker_list.front()));
    summary.setHeader({"Policy", "locked (M/s)", "seqlock (M/s)",
                       "scaling (x)"});
    for (const Scaling &s : scalings)
        summary.addRow({s.policy,
                        TextTable::num(s.baselineHps / 1e6, 2),
                        TextTable::num(s.seqlockHps / 1e6, 2),
                        TextTable::num(s.ratio, 2)});
    summary.print(std::cout);

    // ---- Write sweep: single-mutex shard vs striped shard --------
    // Writes always take the stripe lock, so the locked config (one
    // stripe, locked hit path) is the PR 6 shard verbatim and the
    // striped config is what this bench exists to defend.
    struct WriteSpec
    {
        const char *name;
        HitPath path;
        unsigned stripes;
    };
    const WriteSpec write_specs[2] = {
        {"locked", HitPath::Locked, 1},
        {"striped", HitPath::Seqlock, striped_stripes},
    };

    std::vector<WriteCell> write_cells;
    for (const PolicyKind kind : policies) {
        for (const double frac : write_fracs) {
            for (const WriteSpec &spec : write_specs) {
                for (const unsigned workers : worker_list) {
                    ServeConfig serve_config;
                    serve_config.shards = 4;
                    serve_config.shardBytes = 256 * 1024;
                    serve_config.policy = kind;
                    serve_config.policyParams.seed = args.seed(7);
                    serve_config.hitPath = spec.path;
                    serve_config.stripes = spec.stripes;

                    SyntheticBackendConfig backend_config;
                    backend_config.seed = args.seed(7);

                    HarnessConfig harness;
                    harness.ops = ops;
                    harness.workers = workers;
                    harness.seed = args.seed(7);
                    harness.shardAffinity = false; // real contention
                    harness.mix.numKeys = keys;
                    harness.mix.writeFraction = frac;

                    SyntheticBackend backend(backend_config);
                    CacheService service(serve_config, backend);
                    const HarnessResult result =
                        runLoad(service, harness);
                    service.checkInvariants();

                    WriteCell cell;
                    cell.policy = service.policyName();
                    cell.config = spec.name;
                    cell.stripes = service.numStripes();
                    cell.writeFrac = frac;
                    cell.workers = workers;
                    cell.wallSec = result.wallSec;
                    cell.opsPerSec =
                        result.wallSec > 0.0
                            ? static_cast<double>(ops) /
                                  result.wallSec
                            : 0.0;
                    cell.totals = result.totals;
                    write_cells.push_back(cell);
                }
            }
        }
    }

    const unsigned resolved_stripes =
        write_cells[worker_list.size()].stripes; // first striped cell
    TextTable wtable("write-mix throughput (M ops/s): locked "
                     "(1 stripe) vs striped (" +
                     std::to_string(resolved_stripes) + " stripes)");
    std::vector<std::string> wheader = {"Policy / config / wf"};
    for (const unsigned w : worker_list)
        wheader.push_back("w=" + std::to_string(w));
    wtable.setHeader(wheader);
    for (std::size_t row = 0; row < write_cells.size();
         row += worker_list.size()) {
        const WriteCell &c = write_cells[row];
        std::vector<std::string> out = {
            c.policy + " / " + c.config + " / wf=" +
            TextTable::num(c.writeFrac, 2)};
        for (std::size_t i = 0; i < worker_list.size(); ++i)
            out.push_back(TextTable::num(
                write_cells[row + i].opsPerSec / 1e6, 2));
        wtable.addRow(out);
    }
    wtable.print(std::cout);

    // Write scaling: striped at max workers over the locked
    // single-worker baseline, per policy and write fraction.
    struct WriteScaling
    {
        std::string policy;
        double writeFrac = 0.0;
        double lockedOps = 0.0;
        double stripedOps = 0.0;
        double ratio = 0.0;
    };
    std::vector<WriteScaling> write_scalings;
    const std::size_t per_frac = 2 * worker_list.size();
    const std::size_t per_policy_w = write_fracs.size() * per_frac;
    for (std::size_t p = 0; p < policies.size(); ++p) {
        for (std::size_t f = 0; f < write_fracs.size(); ++f) {
            const std::size_t base = p * per_policy_w + f * per_frac;
            const WriteCell &locked = write_cells[base];
            const WriteCell &striped =
                write_cells[base + per_frac - 1];
            WriteScaling s;
            s.policy = locked.policy;
            s.writeFrac = locked.writeFrac;
            s.lockedOps = locked.opsPerSec;
            s.stripedOps = striped.opsPerSec;
            s.ratio = locked.opsPerSec > 0.0
                          ? striped.opsPerSec / locked.opsPerSec
                          : 0.0;
            write_scalings.push_back(s);
        }
    }

    TextTable wsummary("write scaling: striped@w=" +
                       std::to_string(worker_list.back()) +
                       " / locked@w=" +
                       std::to_string(worker_list.front()));
    wsummary.setHeader({"Policy", "writeFrac", "locked (M/s)",
                        "striped (M/s)", "scaling (x)"});
    for (const WriteScaling &s : write_scalings)
        wsummary.addRow({s.policy, TextTable::num(s.writeFrac, 2),
                         TextTable::num(s.lockedOps / 1e6, 2),
                         TextTable::num(s.stripedOps / 1e6, 2),
                         TextTable::num(s.ratio, 2)});
    wsummary.print(std::cout);

    const std::string json_path =
        args.has("json") ? args.jsonPath() : "BENCH_contention.json";
    std::ofstream os(json_path);
    if (os) {
        os << "{\n  \"ops\": " << ops << ",\n  \"keys\": " << keys
           << ",\n  \"tagScanIsa\": \"" << simd::tagScanIsa()
           << "\",\n  \"cells\": [\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            os << "    {\"policy\": \"" << c.policy
               << "\", \"hitpath\": \"" << hitPathName(c.path)
               << "\", \"workers\": " << c.workers
               << ", \"wallSec\": " << c.wallSec
               << ", \"hits\": " << c.hits
               << ", \"hitsPerSec\": " << c.hitsPerSec
               << ", \"seqlockHits\": " << c.totals.seqlockHits
               << ", \"seqlockRetries\": " << c.totals.seqlockRetries
               << ", \"lockedFallbacks\": " << c.totals.lockedFallbacks
               << ", \"coalescedMisses\": " << c.totals.coalescedMisses
               << "}" << (i + 1 < cells.size() ? ",\n" : "\n");
        }
        os << "  ],\n  \"scaling\": {";
        for (std::size_t i = 0; i < scalings.size(); ++i)
            os << "\"" << scalings[i].policy
               << "\": " << scalings[i].ratio
               << (i + 1 < scalings.size() ? ", " : "");
        os << "},\n  \"stripes\": " << resolved_stripes
           << ",\n  \"writeCells\": [\n";
        for (std::size_t i = 0; i < write_cells.size(); ++i) {
            const WriteCell &c = write_cells[i];
            os << "    {\"policy\": \"" << c.policy
               << "\", \"config\": \"" << c.config
               << "\", \"stripes\": " << c.stripes
               << ", \"writeFrac\": " << c.writeFrac
               << ", \"workers\": " << c.workers
               << ", \"wallSec\": " << c.wallSec
               << ", \"opsPerSec\": " << c.opsPerSec
               << ", \"lockedFallbacks\": " << c.totals.lockedFallbacks
               << ", \"logFullFallbacks\": "
               << c.totals.logFullFallbacks
               << ", \"coalescedMisses\": " << c.totals.coalescedMisses
               << "}" << (i + 1 < write_cells.size() ? ",\n" : "\n");
        }
        os << "  ],\n  \"writeScaling\": {";
        for (std::size_t i = 0; i < write_scalings.size(); ++i)
            os << "\"" << write_scalings[i].policy << "@"
               << TextTable::num(write_scalings[i].writeFrac, 2)
               << "\": " << write_scalings[i].ratio
               << (i + 1 < write_scalings.size() ? ", " : "");
        os << "},\n  \"minScaling\": " << min_scaling
           << ",\n  \"minWriteScaling\": " << min_write_scaling
           << "\n}\n";
        std::cerr << "### wrote JSON to " << json_path << "\n";
    } else {
        std::cerr << "### cannot write " << json_path << "\n";
    }

    bool failed = false;
    if (min_scaling > 0.0) {
        for (const Scaling &s : scalings) {
            if (s.ratio < min_scaling) {
                std::cerr << "### FAIL: " << s.policy << " scaling "
                          << TextTable::num(s.ratio, 2) << "x < "
                          << TextTable::num(min_scaling, 2)
                          << "x required\n";
                failed = true;
            }
        }
        if (!failed)
            std::cout << "### scaling gate passed (>= "
                      << TextTable::num(min_scaling, 2)
                      << "x on every policy)\n";
    }
    if (min_write_scaling > 0.0) {
        bool write_failed = false;
        for (const WriteScaling &s : write_scalings) {
            if (s.ratio < min_write_scaling) {
                std::cerr << "### FAIL: " << s.policy
                          << " write scaling at wf="
                          << TextTable::num(s.writeFrac, 2) << " "
                          << TextTable::num(s.ratio, 2) << "x < "
                          << TextTable::num(min_write_scaling, 2)
                          << "x required\n";
                write_failed = true;
            }
        }
        if (!write_failed)
            std::cout << "### write-scaling gate passed (>= "
                      << TextTable::num(min_write_scaling, 2)
                      << "x on every policy)\n";
        failed = failed || write_failed;
    }
    return failed ? 1 : 0;
}
