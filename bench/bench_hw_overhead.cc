/**
 * @file
 * Reproduction of the Section 5 hardware-cost accounting: extra
 * storage per cache set over plain LRU for GD / BCL / DCL / ACL, in
 * the paper's three scenarios.
 */

#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "cache/HwOverhead.h"

using namespace csr;

namespace
{

void
printScenario(const std::string &title, const HwOverheadParams &params,
              bool show_percent)
{
    TextTable table(title);
    std::vector<std::string> header = {"Algorithm", "bits/set"};
    if (show_percent)
        header.push_back("% over LRU");
    table.setHeader(header);
    for (PolicyKind kind :
         {PolicyKind::Bcl, PolicyKind::GreedyDual, PolicyKind::Dcl,
          PolicyKind::Acl}) {
        std::vector<std::string> row = {
            policyKindName(kind),
            std::to_string(hwOverheadBitsPerSet(kind, params))};
        if (show_percent)
            row.push_back(
                TextTable::num(hwOverheadPercent(kind, params), 2));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::benchArgs(argc, argv);
    bench::banner("Section 5: hardware overhead over LRU",
                  WorkloadScale::Small);

    // Scenario 1: dynamic costs, 8-bit cost fields, full ETD tags
    // (paper: ~1.9% BCL, ~2.7% GD, ~6.6% DCL, ~6.7% ACL).
    HwOverheadParams dynamic;
    printScenario("Dynamic costs (25-bit tags, 8-bit cost fields)",
                  dynamic, true);

    // Scenario 2: static address-derived costs via table lookup
    // (paper: 0.4%, 1.5%, 4.0%, 4.1%).
    HwOverheadParams static_cost = dynamic;
    static_cost.staticCostTable = true;
    printScenario("Static costs via table lookup", static_cost, true);

    // Scenario 3: quantized latencies -- 2-bit fixed costs, 3-bit
    // computed costs, 4-bit aliased ETD tags
    // (paper: 11 / 20 / 32 / 35 bits per set).
    HwOverheadParams quantized;
    quantized.fixedCostBits = 2;
    quantized.computedCostBits = 3;
    quantized.etdTagBits = 4;
    printScenario("Quantized latency costs (G=60ns, K=8, 4-bit ETD "
                  "tags)", quantized, false);
    return 0;
}
