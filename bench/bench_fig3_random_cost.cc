/**
 * @file
 * Reproduction of Figure 3: relative cost savings over LRU with the
 * random cost mapping, in the 16 KB 4-way L2 under a 4 KB L1.
 *
 * For each benchmark, sweeps the cost ratio r in {2,4,8,16,32,inf}
 * and the high-cost access fraction HAF in {0, .01, .05, .1 .. 1.0},
 * for GD / BCL / DCL / ACL.  Expected shape (paper): savings rise
 * quickly from HAF=0, peak between HAF 0.1 and 0.3, then decline
 * toward HAF=1; savings grow with r but taper; the infinite ratio is
 * the upper envelope; DCL tops BCL nearly everywhere and ACL sits
 * slightly below DCL.
 *
 * The whole 4 x 4 x 6 x 13 grid runs through the parallel sweep
 * harness ($CSR_JOBS workers); each (benchmark, policy) pane is then
 * pivoted out of the one result set.
 */

#include <iostream>

#include "BenchCommon.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const CliArgs args = bench::benchArgs(argc, argv);
    const WorkloadScale scale = bench::scaleFrom(args);
    bench::banner("Figure 3: relative cost savings, random cost mapping",
                  scale);

    const SweepResult sweep = bench::runSweep(presetGrid("fig3"), args);

    for (BenchmarkId id : paperBenchmarks()) {
        for (PolicyKind kind : paperPolicies()) {
            const auto pane = bench::filterCells(
                sweep, [&](const SweepCellResult &res) {
                    return res.cell.benchmark == id &&
                           res.cell.policy == kind;
                });
            TextTable table = bench::pivot(
                benchmarkName(id) + " / " + policyKindName(kind) +
                    " -- relative cost savings over LRU (%)",
                "HAF", pane,
                [](const SweepCellResult &res) {
                    return TextTable::num(res.cell.haf, 2);
                },
                [](const SweepCellResult &res) {
                    return res.cell.ratio.label();
                },
                bench::savingsOf);
            table.print(std::cout);
            std::cout << "\n";
        }
    }
    bench::printSweepTiming(sweep);
    return 0;
}
