/**
 * @file
 * Reproduction of Figure 3: relative cost savings over LRU with the
 * random cost mapping, in the 16 KB 4-way L2 under a 4 KB L1.
 *
 * For each benchmark, sweeps the cost ratio r in {2,4,8,16,32,inf}
 * and the high-cost access fraction HAF in {0, .01, .05, .1 .. 1.0},
 * for GD / BCL / DCL / ACL.  Expected shape (paper): savings rise
 * quickly from HAF=0, peak between HAF 0.1 and 0.3, then decline
 * toward HAF=1; savings grow with r but taper; the infinite ratio is
 * the upper envelope; DCL tops BCL nearly everywhere and ACL sits
 * slightly below DCL.
 */

#include <iostream>
#include <vector>

#include "BenchCommon.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceStudy.h"

using namespace csr;

int
main()
{
    const WorkloadScale scale = bench::scaleFromEnv();
    bench::banner("Figure 3: relative cost savings, random cost mapping",
                  scale);

    const std::vector<CostRatio> ratios = {
        CostRatio::finite(2),  CostRatio::finite(4),
        CostRatio::finite(8),  CostRatio::finite(16),
        CostRatio::finite(32), CostRatio::makeInfinite(),
    };
    const std::vector<double> hafs = {0.0, 0.01, 0.05, 0.1, 0.2, 0.3,
                                      0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                                      1.0};

    for (BenchmarkId id : paperBenchmarks()) {
        const SampledTrace trace = bench::sampledTrace(id, scale);
        const TraceStudy study(trace);

        for (PolicyKind kind : paperPolicies()) {
            TextTable table(benchmarkName(id) + " / " +
                            policyKindName(kind) +
                            " -- relative cost savings over LRU (%)");
            std::vector<std::string> header = {"HAF"};
            for (const CostRatio &ratio : ratios)
                header.push_back(ratio.label());
            table.setHeader(header);

            for (double haf : hafs) {
                std::vector<std::string> row = {TextTable::num(haf, 2)};
                for (const CostRatio &ratio : ratios) {
                    const RandomTwoCost model(ratio, haf);
                    row.push_back(TextTable::num(
                        study.savingsPct(kind, model), 2));
                }
                table.addRow(row);
            }
            table.print(std::cout);
            std::cout << "\n";
        }
    }
    return 0;
}
